"""The crash-safe streaming driver: epochs as durable commits.

:class:`StreamRunner` wraps :class:`~repro.stream.engine.StreamEngine`
in the same checkpoint discipline as the batch
:class:`~repro.runner.runner.PipelineRunner` — every epoch is one
atomic commit inside a run directory::

    run_dir/
      stream_manifest.json   # commit point: written last, atomically
      csd-000003.json        # diagram state after the last commit
      epochs/epoch-000002.csv  # recognised sequences of each live epoch
      quarantine.csv         # malformed rows (written by the caller)

Commit protocol, per epoch:

1. process the epoch in memory (ingest, recognise, slide the window);
2. atomically write the epoch's recognised-sequence artifact and the
   *next* diagram artifact (``csd-<n+1>.json`` — the previous one stays
   untouched, so a crash here leaves the old commit fully intact);
3. atomically write the manifest referencing the new artifacts, with
   SHA-256 digests, consumed-input cursors, and the updater's online
   state (pending POIs, dirty units) — **this write is the commit**;
4. best-effort cleanup of the superseded diagram and retired epochs.

A run killed at any point resumes from the last committed epoch:
``resume=True`` reloads the diagram, restores the updater's online
state, re-registers the live epochs into the windowed miner (exact by
the miner's maintenance invariant), and skips the consumed input rows.
Epoch processing is deterministic, so a replayed half-finished epoch
rewrites byte-identical artifacts and the final patterns equal an
uninterrupted run's — the crash/resume test asserts this at every
fault point in :data:`STREAM_FAULT_POINTS`.

The input trips file is treated as append-only: the first
``trips_consumed`` *valid* rows must be unchanged between runs (the
config hash guards parameters, not data — same trust model as tailing
a log).
"""

from __future__ import annotations

import hashlib
import json
import shutil
import time
from dataclasses import asdict, dataclass, field
from itertools import islice
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.core.config import CSDConfig, MiningConfig
from repro.data.io import (
    BadRowSink,
    MalformedRowError,
    QuarantinedRow,
    iter_trips,
    read_pois,
    read_semantic_trajectories,
    write_semantic_trajectories,
)
from repro.data.persistence import load_csd, save_csd
from repro.data.poi import POI
from repro.data.taxi import TaxiTrip
from repro.ioutil import file_sha256, strict_json_loads
from repro.mining.prefixspan import FrequentSequence
from repro.obs import get_registry
from repro.runner.fs import FileSystem, retry_with_backoff
from repro.stream.engine import EpochResult, StreamEngine

PathLike = Union[str, Path]

STREAM_MANIFEST_NAME = "stream_manifest.json"
STREAM_MANIFEST_VERSION = 1
EPOCH_DIR = "epochs"

#: Stable alias of the most recently committed diagram artifact, so a
#: ``repro serve --csd <run_dir>/csd-latest.json`` daemon always has a
#: fixed path to hot-reload from while the epoch-numbered artifacts
#: rotate underneath.
LATEST_CSD_NAME = "csd-latest.json"

#: Fault points announced to the filesystem's ``fault`` hook, in
#: per-epoch execution order (see :mod:`repro.runner.fs`).
STREAM_FAULT_POINTS = (
    "before-epoch",
    "after-epoch-recognition",
    "after-epoch-artifacts",
    "after-epoch-commit",
)


@dataclass
class EpochRecord:
    """One live epoch's committed artifact."""

    index: int
    artifact: str
    sha256: str


@dataclass
class StreamManifest:
    """The ``stream_manifest.json`` document (strict JSON)."""

    config_hash: str
    base_csd_sha256: str
    trips_consumed: int = 0
    pois_consumed: int = 0
    next_seq_id: int = 0
    epoch_index: int = 0
    csd_artifact: str = ""
    csd_sha256: str = ""
    pending: List[int] = field(default_factory=list)
    dirty: List[int] = field(default_factory=list)
    n_added: int = 0
    epochs: List[EpochRecord] = field(default_factory=list)
    format_version: int = STREAM_MANIFEST_VERSION

    def to_json(self) -> str:
        document = asdict(self)
        return json.dumps(
            document, indent=2, sort_keys=True, allow_nan=False
        )


def parse_stream_manifest(
    text: str, *, source: str = STREAM_MANIFEST_NAME
) -> StreamManifest:
    """Parse :meth:`StreamManifest.to_json` output.

    Raises :class:`repro.ioutil.TornArtifactError` naming ``source`` on
    truncated/invalid JSON and ``ValueError`` on unknown versions.
    """
    document = strict_json_loads(text, name=source)
    version = document.get("format_version")
    if version != STREAM_MANIFEST_VERSION:
        raise ValueError(
            f"unsupported stream manifest version {version!r} "
            f"(this build reads version {STREAM_MANIFEST_VERSION})"
        )
    return StreamManifest(
        config_hash=str(document["config_hash"]),
        base_csd_sha256=str(document["base_csd_sha256"]),
        trips_consumed=int(document["trips_consumed"]),
        pois_consumed=int(document["pois_consumed"]),
        next_seq_id=int(document["next_seq_id"]),
        epoch_index=int(document["epoch_index"]),
        csd_artifact=str(document["csd_artifact"]),
        csd_sha256=str(document["csd_sha256"]),
        pending=[int(i) for i in document["pending"]],
        dirty=[int(i) for i in document["dirty"]],
        n_added=int(document["n_added"]),
        epochs=[
            EpochRecord(
                index=int(raw["index"]),
                artifact=str(raw["artifact"]),
                sha256=str(raw["sha256"]),
            )
            for raw in document["epochs"]
        ],
    )


def stream_config_hash(
    csd_config: CSDConfig,
    mining_config: MiningConfig,
    window_epochs: int,
    staleness_threshold: float,
    epoch_trips: int,
    poi_batch: Optional[int],
) -> str:
    """SHA-256 over every knob that shapes the stream's results.

    ``epoch_trips`` and ``poi_batch`` are included because they change
    epoch boundaries, hence day-chain grouping and window contents.
    """
    payload = {
        "csd_config": asdict(csd_config),
        "mining_config": asdict(mining_config),
        "window_epochs": int(window_epochs),
        "staleness_threshold": float(staleness_threshold),
        "epoch_trips": int(epoch_trips),
        "poi_batch": None if poi_batch is None else int(poi_batch),
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StreamRunReport:
    """Summary of one :meth:`StreamRunner.run` invocation."""

    epochs_run: int
    trips_consumed: int
    pois_consumed: int
    resumed: bool
    patterns: List[FrequentSequence] = field(repr=False, default_factory=list)


class StreamRunner:
    """Durable epoch-at-a-time driver over a trips (and POI) stream.

    Parameters
    ----------
    run_dir:
        Checkpoint directory (created if missing).
    trips_path:
        CSV of raw trips (:func:`repro.data.io.iter_trips` schema),
        treated as an append-only stream.
    base_csd_path:
        Offline-built diagram to stream on top of; required for a
        fresh start, ignored on resume (the run directory's committed
        diagram wins).
    pois_path:
        Optional CSV of newly discovered POIs, fed ``poi_batch`` per
        epoch (all at the first epoch when ``poi_batch`` is None).
    epoch_trips:
        Valid trips per epoch — the streaming unit of arrival.
    on_bad_row:
        Quarantine sink for malformed trip rows; without one the first
        bad *unconsumed* row raises.  Rows before the resume cursor are
        never re-quarantined.
    on_epoch:
        Callback after each committed epoch (the CLI uses this to
        notify a running ``repro serve`` daemon).
    """

    def __init__(
        self,
        run_dir: PathLike,
        trips_path: PathLike,
        base_csd_path: Optional[PathLike] = None,
        pois_path: Optional[PathLike] = None,
        csd_config: Optional[CSDConfig] = None,
        mining_config: Optional[MiningConfig] = None,
        *,
        epoch_trips: int = 256,
        poi_batch: Optional[int] = None,
        window_epochs: int = 4,
        staleness_threshold: float = 0.05,
        resume: bool = False,
        fs: Optional[FileSystem] = None,
        max_retries: int = 3,
        backoff_s: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        on_bad_row: Optional[BadRowSink] = None,
        on_epoch: Optional[Callable[[EpochResult], None]] = None,
    ) -> None:
        if epoch_trips < 1:
            raise ValueError("epoch_trips must be at least 1")
        if poi_batch is not None and poi_batch < 1:
            raise ValueError("poi_batch must be at least 1 (or None)")
        self.run_dir = Path(run_dir)
        self.trips_path = Path(trips_path)
        self.base_csd_path = (
            None if base_csd_path is None else Path(base_csd_path)
        )
        self.pois_path = None if pois_path is None else Path(pois_path)
        self.csd_config = csd_config or CSDConfig()
        self.mining_config = mining_config or MiningConfig()
        self.epoch_trips = int(epoch_trips)
        self.poi_batch = poi_batch
        self.window_epochs = int(window_epochs)
        self.staleness_threshold = float(staleness_threshold)
        self.resume = bool(resume)
        self.fs = fs or FileSystem()
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self._sleep = sleep
        self.on_bad_row = on_bad_row
        self.on_epoch = on_epoch
        self.engine: Optional[StreamEngine] = None
        self._manifest: Optional[StreamManifest] = None

    # -- checkpoint plumbing -------------------------------------------

    def _checkpoint(self, name: str, writer: Callable[[Path], None]) -> str:
        path = self.run_dir / name
        retry_with_backoff(
            lambda: self.fs.write_artifact(path, writer),
            max_retries=self.max_retries,
            backoff_s=self.backoff_s,
            sleep=self._sleep,
        )
        return file_sha256(path)

    def _save_manifest(self, manifest: StreamManifest) -> None:
        retry_with_backoff(
            lambda: self.fs.write_text(
                self.run_dir / STREAM_MANIFEST_NAME, manifest.to_json() + "\n"
            ),
            max_retries=self.max_retries,
            backoff_s=self.backoff_s,
            sleep=self._sleep,
        )

    def _verified_artifact(self, record_name: str, sha: str) -> Path:
        path = self.run_dir / record_name
        if not self.fs.exists(path):
            raise ValueError(
                f"committed artifact {record_name} is missing from "
                f"{self.run_dir}"
            )
        actual = file_sha256(path)
        if actual != sha:
            raise ValueError(
                f"committed artifact {record_name} fails its integrity "
                f"check (manifest {sha[:12]}…, file {actual[:12]}…)"
            )
        return path

    # -- state bootstrap -----------------------------------------------

    def _fresh_state(self, cfg_hash: str) -> StreamManifest:
        if self.base_csd_path is None:
            raise ValueError(
                "a fresh stream run needs base_csd_path (an offline-"
                "built diagram to stream on top of)"
            )
        base = load_csd(self.base_csd_path)
        self.engine = StreamEngine(
            base,
            self.csd_config,
            self.mining_config,
            window_epochs=self.window_epochs,
            staleness_threshold=self.staleness_threshold,
        )
        csd_artifact = self._csd_artifact_name(0)
        base_sha = self._checkpoint(
            csd_artifact, lambda tmp: save_csd(tmp, base)
        )
        manifest = StreamManifest(
            config_hash=cfg_hash,
            base_csd_sha256=base_sha,
            csd_artifact=csd_artifact,
            csd_sha256=base_sha,
        )
        self._save_manifest(manifest)
        return manifest

    def _resumed_state(self, cfg_hash: str) -> StreamManifest:
        manifest_path = self.run_dir / STREAM_MANIFEST_NAME
        manifest = parse_stream_manifest(
            self.fs.read_text(manifest_path), source=str(manifest_path)
        )
        if manifest.config_hash != cfg_hash:
            raise ValueError(
                f"run directory {self.run_dir} holds a stream for a "
                "different configuration (config hash mismatch); pass "
                "resume=False to start over, or use a fresh --run-dir"
            )
        csd_path = self._verified_artifact(
            manifest.csd_artifact, manifest.csd_sha256
        )
        csd = load_csd(csd_path)
        engine = StreamEngine(
            csd,
            self.csd_config,
            self.mining_config,
            window_epochs=self.window_epochs,
            staleness_threshold=self.staleness_threshold,
        )
        engine.updater.restore_online_state(
            manifest.pending, manifest.dirty, manifest.n_added
        )
        for record in sorted(manifest.epochs, key=lambda r: r.index):
            path = self._verified_artifact(record.artifact, record.sha256)
            engine.restore_epoch(
                record.index, read_semantic_trajectories(path)
            )
        engine.next_seq_id = manifest.next_seq_id
        engine.next_epoch_index = manifest.epoch_index
        self.engine = engine
        return manifest

    def _publish_latest(self, csd_artifact: str) -> None:
        """Refresh the :data:`LATEST_CSD_NAME` alias (atomic copy).

        Runs outside the commit protocol: the alias is a convenience
        for hot-reloading daemons, never consulted on resume.
        """
        source = self.run_dir / csd_artifact

        def _copy(tmp: Path) -> None:
            shutil.copyfile(source, tmp)

        self.fs.write_artifact(self.run_dir / LATEST_CSD_NAME, _copy)

    def _csd_artifact_name(self, committed_epochs: int) -> str:
        return f"csd-{committed_epochs:06d}.json"

    def _epoch_artifact_name(self, epoch_index: int) -> str:
        return f"{EPOCH_DIR}/epoch-{epoch_index:06d}.csv"

    # -- input streams --------------------------------------------------

    def _trip_stream(self, skip_valid: int) -> Iterator[TaxiTrip]:
        """Validated trips, with the first ``skip_valid`` valid trips
        (already consumed by committed epochs) silently skipped.

        Malformed rows in the skipped prefix were quarantined by the
        original run; re-reporting them would duplicate quarantine
        entries, so the sink is gated on the cursor.
        """
        skipping = skip_valid > 0

        def guarded_sink(row: QuarantinedRow) -> None:
            if skipping:
                return
            if self.on_bad_row is None:
                raise MalformedRowError(row)
            self.on_bad_row(row)

        stream = iter_trips(self.trips_path, on_bad_row=guarded_sink)
        for _ in range(skip_valid):
            if next(stream, None) is None:
                raise ValueError(
                    f"trips file {self.trips_path} has fewer valid rows "
                    f"than the {skip_valid} already committed — the "
                    "stream input must be append-only"
                )
        skipping = False
        yield from stream

    # -- main loop ------------------------------------------------------

    def run(self, max_epochs: Optional[int] = None) -> StreamRunReport:
        """Process (or resume) the stream until input runs dry or
        ``max_epochs`` epochs have been committed this invocation."""
        reg = get_registry()
        self.fs.mkdir(self.run_dir)
        self.fs.mkdir(self.run_dir / EPOCH_DIR)
        cfg_hash = stream_config_hash(
            self.csd_config,
            self.mining_config,
            self.window_epochs,
            self.staleness_threshold,
            self.epoch_trips,
            self.poi_batch,
        )
        resuming = self.resume and self.fs.exists(
            self.run_dir / STREAM_MANIFEST_NAME
        )
        manifest = (
            self._resumed_state(cfg_hash)
            if resuming
            else self._fresh_state(cfg_hash)
        )
        self._manifest = manifest
        engine = self.engine
        assert engine is not None
        if reg.enabled:
            reg.gauge("stream.runner.resumed").set(1.0 if resuming else 0.0)

        pois: List[POI] = (
            [] if self.pois_path is None else read_pois(self.pois_path)
        )
        trips = self._trip_stream(manifest.trips_consumed)
        records: Dict[int, EpochRecord] = {
            record.index: record for record in manifest.epochs
        }
        epochs_run = 0
        while max_epochs is None or epochs_run < max_epochs:
            self.fs.fault("before-epoch")
            batch = list(islice(trips, self.epoch_trips))
            poi_stop = (
                len(pois)
                if self.poi_batch is None
                else manifest.pois_consumed + self.poi_batch
            )
            poi_batch = pois[manifest.pois_consumed : poi_stop]
            if not batch and not poi_batch:
                break
            result = engine.process_epoch(batch, poi_batch)
            self.fs.fault("after-epoch-recognition")

            with reg.timer("stream.commit"):
                epoch_artifact = self._epoch_artifact_name(result.epoch_index)
                epoch_sha = self._checkpoint(
                    epoch_artifact,
                    lambda tmp: write_semantic_trajectories(
                        tmp, result.recognized
                    ),
                )
                superseded_csd = manifest.csd_artifact
                csd_artifact = self._csd_artifact_name(result.epoch_index + 1)
                csd_sha = self._checkpoint(
                    csd_artifact, lambda tmp: save_csd(tmp, engine.csd)
                )
                self.fs.fault("after-epoch-artifacts")

                records[result.epoch_index] = EpochRecord(
                    index=result.epoch_index,
                    artifact=epoch_artifact,
                    sha256=epoch_sha,
                )
                live = set(engine.window_epoch_ids())
                retired_records = [
                    record
                    for index, record in records.items()
                    if index not in live
                ]
                records = {
                    index: record
                    for index, record in records.items()
                    if index in live
                }
                manifest.trips_consumed += len(batch)
                manifest.pois_consumed += len(poi_batch)
                manifest.next_seq_id = engine.next_seq_id
                manifest.epoch_index = engine.next_epoch_index
                manifest.csd_artifact = csd_artifact
                manifest.csd_sha256 = csd_sha
                manifest.pending = engine.updater.pending_indices()
                manifest.dirty = engine.updater.dirty_units()
                manifest.n_added = engine.updater.n_added
                manifest.epochs = [
                    records[index] for index in sorted(records)
                ]
                # The commit point: everything above is provisional
                # until this atomic write lands.
                self._save_manifest(manifest)
            self.fs.fault("after-epoch-commit")

            # Post-commit cleanup (best-effort; a crash here only
            # leaks files the next cleanup cannot see).
            if superseded_csd != csd_artifact:
                self.fs.remove(self.run_dir / superseded_csd)
            for record in retired_records:
                self.fs.remove(self.run_dir / record.artifact)
            self._publish_latest(csd_artifact)

            epochs_run += 1
            if self.on_epoch is not None:
                self.on_epoch(result)

        return StreamRunReport(
            epochs_run=epochs_run,
            trips_consumed=manifest.trips_consumed,
            pois_consumed=manifest.pois_consumed,
            resumed=resuming,
            patterns=engine.patterns(),
        )
