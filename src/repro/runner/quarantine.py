"""Quarantine file: where malformed input records go to be audited.

A 2.2e7-row GPS corpus always contains garbage — truncated lines,
sensor NaNs, clock glitches.  Aborting a 40-minute run on row
18,201,337 is the wrong trade; dropping the row silently is worse.  The
quarantine CSV is the middle path: every rejected record lands here
with its source, 1-based data-row number, machine-readable reason, and
the raw text, so the run completes *and* the loss is fully auditable
(and re-ingestable after repair).

The writer implements the :data:`repro.data.io.BadRowSink` protocol —
pass ``quarantine.sink("trips.csv")`` as ``on_bad_row`` to any
``iter_*`` reader.
"""

from __future__ import annotations

import csv
from pathlib import Path
from types import TracebackType
from typing import IO, Any, Optional, Type, Union

from repro.data.io import BadRowSink, QuarantinedRow

PathLike = Union[str, Path]

QUARANTINE_FIELDS = ["source", "row_number", "reason", "raw"]


class Quarantine:
    """Append-only CSV of rejected input records.

    The file (and its header) is created lazily on the first rejected
    row, so a clean run leaves no quarantine file behind — its absence
    is itself the audit result.  Use as a context manager or call
    :meth:`close` explicitly.

    Durability guarantees (a long-lived ``repro serve`` or streaming
    ingest process made both of these load-bearing):

    * every :meth:`add` flushes, so a process killed mid-run — the one
      failure mode ``__exit__`` cannot catch — loses no recorded rows;
    * reopening after :meth:`close` appends instead of truncating.  The
      old ``"w"``-mode reopen silently destroyed every previously
      quarantined row the first time a sink was used again.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.count = 0
        self._file: Optional[IO[str]] = None
        self._writer: Optional[Any] = None  # csv writer object
        self._header_written = False

    def sink(self, source: str) -> BadRowSink:
        """A :data:`BadRowSink` recording rows under ``source``."""

        def on_bad_row(row: QuarantinedRow) -> None:
            self.add(source, row)

        return on_bad_row

    def add(self, source: str, row: QuarantinedRow) -> None:
        if self._writer is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # "a" keeps rows from a previous open of this same
            # quarantine; the header is only emitted once per file.
            self._file = open(
                self.path, "a", newline="", encoding="utf-8"
            )
            self._writer = csv.writer(self._file)
            if not self._header_written and self._file.tell() == 0:
                self._writer.writerow(QUARANTINE_FIELDS)
            self._header_written = True
        self._writer.writerow(
            [source, row.row_number, row.reason, row.raw]
        )
        self._file.flush()  # type: ignore[union-attr]
        self.count += 1

    def flush(self) -> None:
        """Push any buffered rows to the OS (no-op when never opened)."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
            self._writer = None

    def __enter__(self) -> "Quarantine":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        # Close on success *and* error paths alike: an exception after
        # rows were buffered must still land them on disk.
        self.close()
        return False
