"""repro.runner — fault-tolerant, resumable pipeline execution.

The robustness layer over the Pervasive Miner stages: streaming
validated ingestion with record quarantine (``repro.data.io.iter_*`` +
:class:`Quarantine`), stage checkpointing with a strict-JSON manifest,
crash/resume with bit-identical results, bounded-memory chunked
recognition, and retry-with-backoff checkpoint I/O with an injectable
flaky-filesystem fault hook.  See ``docs/RUNNER.md``.

>>> from repro.runner import PipelineRunner                # doctest: +SKIP
>>> runner = PipelineRunner("runs/april", resume=True)     # doctest: +SKIP
>>> result = runner.run(pois, trajectories)                # doctest: +SKIP
"""

from repro.runner.fs import (
    FileSystem,
    FlakyFileSystem,
    SimulatedCrash,
    retry_with_backoff,
)
from repro.runner.manifest import (
    Manifest,
    StageRecord,
    config_hash,
    file_sha256,
    input_digest,
    parse_manifest,
)
from repro.runner.quarantine import Quarantine
from repro.runner.runner import (
    CSD_ARTIFACT,
    FAULT_POINTS,
    MANIFEST_NAME,
    RECOGNIZED_ARTIFACT,
    PipelineRunner,
)
from repro.runner.stream import (
    STREAM_FAULT_POINTS,
    STREAM_MANIFEST_NAME,
    StreamManifest,
    StreamRunner,
    StreamRunReport,
    parse_stream_manifest,
    stream_config_hash,
)

__all__ = [
    "CSD_ARTIFACT",
    "FAULT_POINTS",
    "STREAM_FAULT_POINTS",
    "STREAM_MANIFEST_NAME",
    "StreamManifest",
    "StreamRunner",
    "StreamRunReport",
    "parse_stream_manifest",
    "stream_config_hash",
    "FileSystem",
    "FlakyFileSystem",
    "MANIFEST_NAME",
    "Manifest",
    "PipelineRunner",
    "Quarantine",
    "RECOGNIZED_ARTIFACT",
    "SimulatedCrash",
    "StageRecord",
    "config_hash",
    "file_sha256",
    "input_digest",
    "parse_manifest",
    "retry_with_backoff",
]
