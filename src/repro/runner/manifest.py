"""Run manifests: what a checkpoint directory claims to contain.

The manifest is the single source of truth for resume decisions.  It is
a strict-JSON document (``allow_nan=False``, like the persistence
layer) recording

- a **config hash** over both parameter dataclasses plus the runner's
  own result-affecting knobs, and
- an **input digest** over the POI set and the trajectory corpus,

so a checkpoint is only ever reused for the exact computation that
produced it — resuming with a different ``alpha`` or a regenerated
corpus is detected and refused instead of silently mixing results.
Per-stage entries carry the artifact filename and its SHA-256, letting
the runner reject artifacts that were truncated or edited after the
manifest was written.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.config import CSDConfig, MiningConfig
from repro.data.poi import POI
from repro.data.trajectory import SemanticTrajectory
from repro.ioutil import file_sha256, strict_json_loads

__all__ = [
    "MANIFEST_VERSION",
    "STAGES",
    "STATUS_PENDING",
    "STATUS_COMPLETE",
    "StageRecord",
    "Manifest",
    "parse_manifest",
    "config_hash",
    "input_digest",
    "file_sha256",  # re-exported from repro.ioutil for back-compat
]

#: Format marker so later revisions can migrate old run directories.
MANIFEST_VERSION = 1

#: Stage names in execution order.
STAGES = ("constructor", "recognition", "extraction")

STATUS_PENDING = "pending"
STATUS_COMPLETE = "complete"


@dataclass
class StageRecord:
    """Checkpoint state of one pipeline stage."""

    status: str = STATUS_PENDING
    artifact: Optional[str] = None
    artifact_sha256: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"status": self.status}
        if self.artifact is not None:
            out["artifact"] = self.artifact
            out["artifact_sha256"] = self.artifact_sha256
        return out


@dataclass
class Manifest:
    """The ``manifest.json`` document of one run directory."""

    config_hash: str
    input_digest: str
    format_version: int = MANIFEST_VERSION
    stages: Dict[str, StageRecord] = field(
        default_factory=lambda: {name: StageRecord() for name in STAGES}
    )

    def matches(self, config_hash: str, input_digest: str) -> bool:
        """True when this manifest describes the same computation."""
        return (
            self.config_hash == config_hash
            and self.input_digest == input_digest
        )

    def stage(self, name: str) -> StageRecord:
        if name not in self.stages:
            raise KeyError(f"unknown stage {name!r}")
        return self.stages[name]

    def mark_complete(
        self, name: str, artifact: Optional[str], artifact_sha256: Optional[str]
    ) -> None:
        record = self.stage(name)
        record.status = STATUS_COMPLETE
        record.artifact = artifact
        record.artifact_sha256 = artifact_sha256

    def to_json(self) -> str:
        document = {
            "format_version": self.format_version,
            "config_hash": self.config_hash,
            "input_digest": self.input_digest,
            "stages": {
                name: record.to_dict()
                for name, record in self.stages.items()
            },
        }
        return json.dumps(
            document, indent=2, sort_keys=True, allow_nan=False
        )


def parse_manifest(text: str, *, source: str = "manifest.json") -> Manifest:
    """Parse :meth:`Manifest.to_json` output.

    Raises :class:`repro.ioutil.TornArtifactError` naming ``source`` on
    truncated/invalid JSON (a torn manifest must say *which* file to
    recover, not just that parsing failed) and ``ValueError`` on
    unknown versions or structurally broken documents.
    """
    document = strict_json_loads(text, name=source)
    version = document.get("format_version")
    if version != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {version!r} "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    stages: Dict[str, StageRecord] = {}
    for name in STAGES:
        raw = document.get("stages", {}).get(name)
        if raw is None:
            stages[name] = StageRecord()
            continue
        status = str(raw.get("status", STATUS_PENDING))
        if status not in (STATUS_PENDING, STATUS_COMPLETE):
            raise ValueError(f"stage {name!r} has unknown status {status!r}")
        artifact = raw.get("artifact")
        stages[name] = StageRecord(
            status=status,
            artifact=None if artifact is None else str(artifact),
            artifact_sha256=(
                None
                if raw.get("artifact_sha256") is None
                else str(raw["artifact_sha256"])
            ),
        )
    return Manifest(
        config_hash=str(document["config_hash"]),
        input_digest=str(document["input_digest"]),
        stages=stages,
    )


def config_hash(
    csd_config: CSDConfig,
    mining_config: MiningConfig,
    chunk_size: int,
) -> str:
    """SHA-256 over every parameter that can change the mining result.

    ``chunk_size`` is included defensively: chunked recognition is
    bit-identical by construction (each stay point votes
    independently), but hashing it means a future chunk-sensitive stage
    cannot silently reuse a stale checkpoint.
    """
    payload = {
        "csd_config": asdict(csd_config),
        "mining_config": asdict(mining_config),
        "chunk_size": int(chunk_size),
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def input_digest(
    pois: Sequence[POI],
    trajectories: Sequence[SemanticTrajectory],
) -> str:
    """Streaming SHA-256 over the full input corpus.

    Floats are hashed via ``repr`` (shortest round-tripping form), so
    the digest is stable across platforms and process restarts but
    changes on any value change.  Cost is one pass over the data —
    negligible next to construction and recognition.
    """
    h = hashlib.sha256()
    h.update(f"pois:{len(pois)}\n".encode("utf-8"))
    for p in pois:
        h.update(
            f"{p.poi_id},{p.lon!r},{p.lat!r},{p.major},{p.minor},{p.name}\n"
            .encode("utf-8")
        )
    h.update(f"trajectories:{len(trajectories)}\n".encode("utf-8"))
    for st in trajectories:
        h.update(f"t{st.traj_id}:{len(st.stay_points)}\n".encode("utf-8"))
        for sp in st.stay_points:
            tags = ",".join(sorted(sp.semantics))
            h.update(
                f"{sp.lon!r},{sp.lat!r},{sp.t!r},{tags}\n".encode("utf-8")
            )
    return h.hexdigest()
