"""repro.obs — zero-dependency pipeline observability.

The package-level API is a process-local default
:class:`~repro.obs.metrics.MetricsRegistry` plus convenience wrappers,
so instrumentation sites can write::

    from repro.obs import get_registry

    reg = get_registry()
    with reg.timer("constructor.clustering"):
        ...
    reg.counter("constructor.units.coarse").inc(len(coarse))

and callers can flip collection on around a pipeline run::

    from repro import obs

    obs.enable()
    miner.mine(pois, trajectories)
    print(obs.to_json())          # or obs.report() for the dict

The default registry ships **disabled**; a disabled registry is a
no-op (measured <2% overhead on the standard 12k-POI kernel workload —
see ``docs/OBSERVABILITY.md`` for the metric catalogue, the snapshot
schema, and the overhead methodology).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Timer,
    monotonic_s,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Timer",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "disable",
    "enable",
    "get_registry",
    "monotonic_s",
    "report",
    "set_registry",
    "to_json",
]

_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-local default registry all pipeline stages use."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests / embedders); returns the old one."""
    global _registry
    old = _registry
    _registry = registry
    return old


def enable() -> None:
    """Start collecting metrics on the default registry."""
    _registry.enable()


def disable() -> None:
    """Stop collecting; already-recorded values remain readable."""
    _registry.disable()


def report() -> Dict[str, object]:
    """JSON-serialisable snapshot of the default registry."""
    return _registry.snapshot()


def to_json(indent: Optional[int] = 2) -> str:
    """The default registry's snapshot as a JSON string."""
    return _registry.to_json(indent=indent)
