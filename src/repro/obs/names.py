"""Central registry of every observability metric and span name.

Metric names are part of the pipeline's public contract: dashboards,
the bench harness, and ``docs/OBSERVABILITY.md`` all key on them, so a
typo at an instrumentation site ("recogniton.batches") silently forks
the catalogue.  This module is the single source of truth:

* every ``counter``/``gauge``/``histogram``/``timer`` call site in
  ``src/repro`` must pass a string literal that appears in the matching
  set below (reprolint rule **RPL008** checks this statically);
* every name below must appear in ``docs/OBSERVABILITY.md`` and every
  metric-like name in that doc's catalogue must appear here (reprolint
  rule **RPL010**, the docs-drift gate).

The sets are plain literals on purpose: reprolint's cross-module pass
reads them from the AST without importing this package, so the linter
stays stdlib-only and import-cycle-free.  When adding a metric, add the
literal here, use the same literal at the call site, and document it in
``docs/OBSERVABILITY.md`` — the gates fail until all three agree.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

__all__ = [
    "COUNTERS",
    "GAUGES",
    "HISTOGRAMS",
    "TIMERS",
    "SPAN_LABELS",
    "SPAN_NAMES",
    "METRIC_NAMES",
    "DOCUMENTED_NAMES",
    "metric_kind",
]

#: Monotone event counts.
COUNTERS: FrozenSet[str] = frozenset(
    {
        "constructor.pois.total",
        "constructor.pois.clustered",
        "constructor.pois.leftover",
        "constructor.pois.purified",
        "constructor.pois.merged",
        "constructor.units.coarse",
        "constructor.units.pure",
        "constructor.units.final",
        "constructor.clustering.rounds",
        "constructor.clustering.candidates",
        "contracts.checks",
        "contracts.violations",
        "extraction.sequences.mined",
        "extraction.patterns.coarse",
        "extraction.patterns.emitted",
        "extraction.patterns.pruned",
        "extraction.supporters.dropped_temporal",
        "geo.index.queries",
        "geo.index.centers",
        "geo.index.candidates",
        "geo.index.hits",
        "incremental.distribution.computations",
        "incremental.distribution.cache_hits",
        "incremental.buffer.reallocations",
        "incremental.repairs",
        "incremental.repair.units",
        "incremental.repair.absorbed",
        "ingest.rows",
        "ingest.quarantined",
        "pipeline.runner.chunks",
        "pipeline.runner.stages.run",
        "pipeline.runner.stages.skipped",
        "pipeline.runner.checkpoint.retries",
        "prefixspan.sequences.mined",
        "prefixspan.patterns.emitted",
        "prefixspan.candidates.pruned",
        "prefixspan.nodes.expanded",
        "prefixspan.patterns.merged",
        "prefixspan.patterns.aged_out",
        "recognition.batches",
        "recognition.stays.recognized",
        "recognition.stays.unmatched",
        "recognition.votes.cast",
        "serve.requests",
        "serve.rejected",
        "serve.errors",
        "serve.batches",
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.reloads",
        "serve.reloads.skipped",
        "stream.epochs",
        "stream.trips.ingested",
        "stream.pois.ingested",
        "stream.sequences.added",
        "stream.sequences.retired",
        "stream.repairs",
        "stream.serve.notified",
    }
)

#: Point-in-time levels.
GAUGES: FrozenSet[str] = frozenset(
    {
        "incremental.added",
        "incremental.pending",
        "incremental.staleness",
        "incremental.units.dirty",
        "pipeline.runner.resumed",
        "pipeline.runner.recognition.progress",
        "serve.queue.depth",
        "serve.cache.size",
        "stream.window.sequences",
        "stream.window.epochs",
        "stream.patterns.live",
        "stream.runner.resumed",
    }
)

#: Bucketed distributions.
HISTOGRAMS: FrozenSet[str] = frozenset(
    {
        "recognition.batch_latency_s",
        "recognition.batch_size",
        "serve.request_latency_s",
        "serve.batch_size",
        "serve.batch_wait_s",
    }
)

#: Plain (non-span) timer aggregates.
TIMERS: FrozenSet[str] = frozenset(
    {
        "constructor.popularity",
        "constructor.clustering",
        "constructor.purification",
        "constructor.merging",
        "extraction.prefixspan",
        "extraction.refinement",
        "recognition.batch",
        "pipeline.runner.checkpoint",
        "serve.request",
        "incremental.repair",
        "stream.epoch",
        "stream.recognize",
        "stream.maintain",
        "stream.commit",
    }
)

#: Labels passed to ``registry.span(...)`` at call sites.  Spans nest,
#: so the label is only the leaf segment; the dotted names that land in
#: snapshots are in :data:`SPAN_NAMES`.
SPAN_LABELS: FrozenSet[str] = frozenset(
    {
        "pipeline",
        "pipeline.runner",
        "constructor",
        "recognition",
        "extraction",
    }
)

#: Fully-qualified span names as they appear in metric snapshots (the
#: dotted join of the open span stack).
SPAN_NAMES: FrozenSet[str] = frozenset(
    {
        "pipeline",
        "pipeline.constructor",
        "pipeline.recognition",
        "pipeline.extraction",
        "pipeline.runner",
        "pipeline.runner.constructor",
        "pipeline.runner.recognition",
        "pipeline.runner.extraction",
    }
)

#: Every name a ``counter``/``gauge``/``histogram``/``timer`` call may use.
METRIC_NAMES: FrozenSet[str] = COUNTERS | GAUGES | HISTOGRAMS | TIMERS

#: Every name ``docs/OBSERVABILITY.md`` must list (RPL010).
DOCUMENTED_NAMES: FrozenSet[str] = METRIC_NAMES | SPAN_NAMES


def metric_kind(name: str) -> Optional[str]:
    """The registered kind of ``name`` (``"counter"``, ``"gauge"``,
    ``"histogram"``, ``"timer"``, ``"span"``), or ``None`` if the name
    is not registered anywhere."""
    if name in COUNTERS:
        return "counter"
    if name in GAUGES:
        return "gauge"
    if name in HISTOGRAMS:
        return "histogram"
    if name in TIMERS:
        return "timer"
    if name in SPAN_LABELS or name in SPAN_NAMES:
        return "span"
    return None
