"""Process-local metrics: counters, gauges, histograms, timers, spans.

The three Pervasive Miner stages (Constructor → Recognizer → Extractor)
run at city scale, where knowing *where time and data-quality loss go
per stage* is the difference between a tunable pipeline and a black
box.  This module is the zero-dependency substrate: a
:class:`MetricsRegistry` owning named metrics, monotonic-clock
:class:`Timer`/:class:`Span` context managers, and a JSON snapshot API
(``docs/OBSERVABILITY.md`` documents the schema and every metric the
pipeline emits).

Design constraints, in order:

1. **Disabled means free.**  The registry ships disabled; every
   instrumentation site either checks ``registry.enabled`` once or
   receives the shared no-op context manager.  The measured overhead on
   the standard 12k-POI kernel workload is below 2%
   (``benchmarks/bench_kernel_speedup.py`` re-measures it on every run).
2. **No wall clocks.**  All timing uses ``time.perf_counter`` — the
   monotonic high-resolution clock — and only through this module;
   reprolint rule RPL006 forbids direct ``time.*`` timing calls
   elsewhere under ``src/repro/``.
3. **Stdlib only.**  ``time`` + ``json`` + ``threading``; nothing else.
"""

from __future__ import annotations

import json
import threading

# RPL006 exempts repro.obs: this module IS the sanctioned timing layer.
import time
from types import TracebackType
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Timer",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "monotonic_s",
]


def monotonic_s() -> float:
    """Monotonic seconds from the one sanctioned clock.

    Long-lived callers (the ``repro serve`` micro-batcher) need raw
    monotonic readings for deadline arithmetic, not just aggregated
    ``Timer`` blocks.  Exposing the clock here keeps every timing call
    inside ``repro.obs`` (reprolint RPL006 bans direct ``time.*`` calls
    elsewhere under ``src/repro/``).
    """
    return time.perf_counter()

#: Default histogram bucket upper bounds for latencies, in seconds.
#: An implicit ``+inf`` bucket always terminates the list.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Default bucket upper bounds for size-style observations (batch
#: sizes, hit counts); implicit ``+inf`` terminates these too.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0,
)

class Counter:
    """Monotonically increasing named count.

    ``inc`` is a no-op while the owning registry is disabled, so
    instrumentation sites can hold a counter unconditionally.
    """

    __slots__ = ("name", "_registry", "_value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the counter if metrics are enabled."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._registry._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Named point-in-time value (pending POIs, staleness fraction...)."""

    __slots__ = ("name", "_registry", "_value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram over float observations.

    ``buckets`` are upper bounds in ascending order; an implicit
    ``+inf`` bucket catches everything beyond the last bound.  The
    snapshot reports per-bucket counts plus ``count``/``total``/
    ``min``/``max``, enough to recover rates and coarse quantiles.
    """

    __slots__ = ("name", "_registry", "_bounds", "_counts", "_count",
                 "_total", "_min", "_max")

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be non-empty and ascending")
        self.name = name
        self._registry = registry
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +inf bucket
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        v = float(value)
        slot = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if v <= bound:
                slot = i
                break
        with self._registry._lock:
            self._counts[slot] += 1
            self._count += 1
            self._total += v
            self._min = min(self._min, v)
            self._max = max(self._max, v)

    @property
    def count(self) -> int:
        return self._count

    def _reset_values(self) -> None:
        """Zero all recorded observations in place (bounds persist).

        Called under the registry lock.  Resetting in place — instead of
        dropping the object from the registry — keeps every reference an
        instrumentation site cached live: a long-running process that
        held onto a histogram across a reset keeps recording into the
        snapshot, not into an orphan.
        """
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-ready form; bucket keys are stringified bounds."""
        out: Dict[str, object] = {
            "count": self._count,
            "total": self._total,
        }
        if self._count:
            out["min"] = self._min
            out["max"] = self._max
        buckets: Dict[str, int] = {}
        for bound, n in zip(self._bounds, self._counts):
            buckets[repr(bound)] = n
        buckets["+inf"] = self._counts[-1]
        out["buckets"] = buckets
        return out


class _NullTimer:
    """Shared do-nothing context manager for disabled registries.

    Carries the same ``elapsed`` attribute as :class:`Timer` so call
    sites can read it unconditionally (it stays 0.0).
    """

    __slots__ = ()
    elapsed: float = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class Timer:
    """Monotonic-clock timing context manager for one named metric.

    Each completed ``with`` block folds its wall time into the
    registry's per-name aggregate (count / total / min / max seconds);
    ``elapsed`` holds the last block's duration for callers that also
    want to feed a histogram.
    """

    __slots__ = ("name", "_registry", "_start", "elapsed")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.elapsed = time.perf_counter() - self._start
        self._registry._record_timing(self.name, self.elapsed)
        return False


class Span(Timer):
    """Nested timing scope; records under the dotted path of open spans.

    .. code-block:: python

        with registry.span("pipeline"):
            with registry.span("constructor"):
                ...  # recorded as "pipeline.constructor"

    Nesting state is thread-local, so worker threads cannot corrupt
    each other's span paths.
    """

    __slots__ = ("_label",)

    def __init__(self, label: str, registry: "MetricsRegistry") -> None:
        super().__init__(label, registry)
        self._label = label

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        stack.append(self._label)
        self.name = ".".join(stack)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        result = super().__exit__(exc_type, exc, tb)
        stack = self._registry._span_stack()
        if stack and stack[-1] == self._label:
            stack.pop()
        return result


class MetricsRegistry:
    """Process-local home of all named metrics.

    Disabled by default: every metric mutation checks ``enabled`` first
    and :meth:`timer`/:meth:`span` return a shared no-op context
    manager, so an idle registry costs a handful of attribute reads per
    pipeline *batch* (not per element).  Metric objects are created
    lazily on first use and live for the registry's lifetime;
    :meth:`reset` clears values but keeps the enabled state.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        # Vetted RPL016 sites: repro.obs spawns no threads of its own,
        # so this lock is only ever held by the thread that forked —
        # never copied locked into a worker.  It guards short
        # pure-Python sections for callers that *do* run threaded
        # (e.g. a future `repro serve` request handler).
        self._lock = threading.Lock()  # reprolint: allow-thread
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: name -> [count, total_s, min_s, max_s]
        self._timings: Dict[str, List[float]] = {}
        self._local = threading.local()  # reprolint: allow-thread

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded values; metric *identity* persists.

        Every ``Counter``/``Gauge``/``Histogram`` object is zeroed in
        place rather than discarded, so references cached by
        instrumentation sites (or held across ``repro serve`` scrapes)
        keep feeding the registry after a reset.  The previous
        behaviour — clearing the histogram dict — silently orphaned any
        cached histogram: its observations kept landing in an object no
        snapshot would ever see again.  Timings carry no cached handles
        (``_record_timing`` re-creates slots on demand), so clearing
        that dict is safe.
        """
        with self._lock:
            for counter in self._counters.values():
                counter._value = 0
            for gauge in self._gauges.values():
                gauge._value = 0.0
            for histogram in self._histograms.values():
                histogram._reset_values()
            self._timings.clear()

    # -- metric factories ----------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(
                    name, Counter(name, self)
                )
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name, self))
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Named histogram; ``buckets`` only applies on first creation."""
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    name,
                    Histogram(
                        name, self, buckets or DEFAULT_LATENCY_BUCKETS_S
                    ),
                )
        return metric

    def timer(self, name: str) -> Union[Timer, _NullTimer]:
        """Timing context manager (shared no-op while disabled)."""
        if not self.enabled:
            return _NULL_TIMER
        return Timer(name, self)

    def span(self, label: str) -> Union[Span, _NullTimer]:
        """Nested timing scope (shared no-op while disabled)."""
        if not self.enabled:
            return _NULL_TIMER
        return Span(label, self)

    # -- internals -----------------------------------------------------

    def _span_stack(self) -> List[str]:
        stack = getattr(self._local, "spans", None)
        if stack is None:
            stack = []
            self._local.spans = stack
        return stack

    def _record_timing(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            slot = self._timings.get(name)
            if slot is None:
                self._timings[name] = [1.0, seconds, seconds, seconds]
            else:
                slot[0] += 1.0
                slot[1] += seconds
                slot[2] = min(slot[2], seconds)
                slot[3] = max(slot[3], seconds)

    # -- snapshot ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """One JSON-serialisable document of every recorded metric.

        Schema (see ``docs/OBSERVABILITY.md``)::

            {
              "enabled":    bool,
              "counters":   {name: int},
              "gauges":     {name: float},
              "timers":     {name: {count, total_s, min_s, max_s}},
              "histograms": {name: {count, total, min?, max?,
                                    buckets: {bound: int, "+inf": int}}}
            }
        """
        with self._lock:
            counters = {
                name: c._value
                for name, c in sorted(self._counters.items())
                if c._value
            }
            gauges = {
                name: g._value for name, g in sorted(self._gauges.items())
            }
            timers = {
                name: {
                    "count": int(slot[0]),
                    "total_s": slot[1],
                    "min_s": slot[2],
                    "max_s": slot[3],
                }
                for name, slot in sorted(self._timings.items())
            }
            histograms = {
                name: h.to_dict()
                for name, h in sorted(self._histograms.items())
                if h.count
            }
        return {
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "timers": timers,
            "histograms": histograms,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON string (strict: ``allow_nan=False``)."""
        return json.dumps(
            self.snapshot(), indent=indent, allow_nan=False, sort_keys=True
        )
