"""Biased check-in simulator reproducing Table 1's semantic-bias study.

The paper motivates *Semantic Bias* with FourSquare data: users share
bars and restaurants but not hospital visits, so check-in topic ratios
are a distorted view of real activity.  We model a city profile as

- a ground-truth *activity mix* (how often residents really perform each
  topic), and
- a per-topic *sharing probability* (how willing users are to check in).

Observed check-ins are activities filtered by a Bernoulli share draw, so
the expected observed ratio of topic ``s`` is proportional to
``mix[s] * share[s]``.  The two bundled profiles are calibrated so the
observed top-10 reproduces Table 1's New York and Tokyo columns while
private topics (hospital, drug store) stay frequent in ground truth but
vanish from the observed ranking — the bias the CSD approach avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

#: Sharing probability per topic class.  Private/medical topics are
#: rarely shared; mundane commuting topics are shared at intermediate
#: rates; social topics are shared eagerly.
_DEFAULT_SHARE = {
    "social": 0.9,
    "commute": 0.5,
    "private": 0.02,
    "home": 0.3,
}


@dataclass(frozen=True)
class CityCheckinProfile:
    """Ground-truth and sharing behaviour of one city's users."""

    name: str
    #: topic -> (ground-truth activity share, sharing probability)
    topics: Dict[str, Tuple[float, float]]

    def activity_mix(self) -> Dict[str, float]:
        total = sum(w for w, _s in self.topics.values())
        return {t: w / total for t, (w, _s) in self.topics.items()}

    def expected_observed(self) -> Dict[str, float]:
        """Expected check-in ratio per topic: share-weighted activity."""
        raw = {t: w * s for t, (w, s) in self.topics.items()}
        total = sum(raw.values())
        return {t: v / total for t, v in raw.items()}


def _profile(name: str, rows: List[Tuple[str, float, str]]) -> CityCheckinProfile:
    """Build a profile from (topic, target observed %, share class) rows.

    The ground-truth activity weight is back-solved as
    ``target / share`` so the *expected observed* ratios equal the Table 1
    targets exactly, while ground truth keeps the suppressed mass.
    """
    topics: Dict[str, Tuple[float, float]] = {}
    for topic, target_pct, share_class in rows:
        share = _DEFAULT_SHARE[share_class]
        topics[topic] = (target_pct / share, share)
    return CityCheckinProfile(name, topics)


#: Calibrated to Table 1's New York column, plus the private topics the
#: paper says never surface.
NEW_YORK = _profile(
    "New York",
    [
        ("Bar", 7.03, "social"),
        ("Home (private)", 6.80, "home"),
        ("Office", 5.60, "commute"),
        ("Subway", 4.11, "commute"),
        ("Fitness Center", 4.03, "social"),
        ("Coffee Shop", 3.30, "social"),
        ("Food Drink Shop", 2.90, "social"),
        ("Train Station", 2.81, "commute"),
        ("Park", 2.11, "social"),
        ("Neighborhood", 2.02, "social"),
        ("Restaurant", 1.90, "social"),
        ("Shop", 1.80, "social"),
        ("Hospital", 0.08, "private"),
        ("Drug Store", 0.05, "private"),
        ("Doctor's Office", 0.04, "private"),
        # Long tail of minor venue types; keeps the named ratios on the
        # same whole-corpus scale Table 1 reports them on.
        ("Other", 55.42, "social"),
    ],
)

#: Calibrated to Table 1's Tokyo column; Tokyo users famously hide home.
TOKYO = _profile(
    "Tokyo",
    [
        ("Train Station", 34.93, "commute"),
        ("Subway", 7.26, "commute"),
        ("Noodle House", 3.01, "social"),
        ("Convenience Store", 2.93, "social"),
        ("Japanese Restaurant", 2.73, "social"),
        ("Bar", 2.60, "social"),
        ("Food & Drink Shop", 2.44, "social"),
        ("Electronics Store", 1.89, "social"),
        ("Mall", 1.88, "social"),
        ("Coffee Shop", 1.56, "social"),
        ("Office", 1.40, "commute"),
        ("Home (private)", 0.30, "home"),
        ("Hospital", 0.06, "private"),
        ("Drug Store", 0.05, "private"),
        ("Other", 36.96, "social"),
    ],
)

PROFILES: Dict[str, CityCheckinProfile] = {
    "New York": NEW_YORK,
    "Tokyo": TOKYO,
}


@dataclass
class CheckinStudy:
    """Result of one simulation: observed vs ground-truth topic shares."""

    profile: CityCheckinProfile
    n_activities: int
    n_checkins: int
    observed_ratio: Dict[str, float]
    truth_ratio: Dict[str, float]

    def top_topics(self, k: int = 10) -> List[Tuple[str, float]]:
        """Observed top-``k`` named topics, Table 1 style.

        The synthetic "Other" long-tail bucket is skipped — Table 1
        ranks concrete venue types only.
        """
        ranked = sorted(
            self.observed_ratio.items(), key=lambda kv: kv[1], reverse=True
        )
        return [(t, r) for t, r in ranked if t != "Other"][:k]

    def bias_of(self, topic: str) -> float:
        """Observed/truth ratio for a topic; < 1 means under-reported."""
        truth = self.truth_ratio.get(topic, 0.0)
        if truth == 0.0:
            return float("nan")
        return self.observed_ratio.get(topic, 0.0) / truth


class CheckinSimulator:
    """Monte-Carlo check-in generator for a :class:`CityCheckinProfile`."""

    def __init__(self, profile: CityCheckinProfile, seed: int = 5) -> None:
        self.profile = profile
        self.seed = seed

    def run(self, n_activities: int = 100_000) -> CheckinStudy:
        """Simulate ``n_activities`` real activities and their check-ins."""
        if n_activities <= 0:
            raise ValueError("n_activities must be positive")
        rng = np.random.default_rng(self.seed)
        topics = list(self.profile.topics)
        mix = self.profile.activity_mix()
        weights = np.array([mix[t] for t in topics], dtype=np.float64)
        share = np.array(
            [self.profile.topics[t][1] for t in topics], dtype=np.float64
        )

        draws = rng.choice(len(topics), size=n_activities, p=weights)
        shared = rng.random(n_activities) < share[draws]

        truth_counts = np.bincount(draws, minlength=len(topics)).astype(float)
        obs_counts = np.bincount(
            draws[shared], minlength=len(topics)
        ).astype(float)
        n_checkins = int(obs_counts.sum())
        truth_ratio = {
            t: truth_counts[i] / n_activities for i, t in enumerate(topics)
        }
        observed_ratio = {
            t: (obs_counts[i] / n_checkins if n_checkins else 0.0)
            for i, t in enumerate(topics)
        }
        return CheckinStudy(
            self.profile, n_activities, n_checkins, observed_ratio, truth_ratio
        )
