"""Dense GPS track generator (smartphone-style traces).

The taxi corpus only records pick-up/drop-off events, so Definition 5's
stay-point detector never runs on it.  This generator produces the other
data family the paper targets — continuous smartphone traces — by
walking an agent through a day plan of (venue, dwell) stops with
constant-speed travel legs, sampling a GPS fix every ``sample_s``
seconds with Gaussian noise.  Feeding these tracks through
:func:`repro.core.staypoints.detect_stay_points` exercises the full
Algorithm 3 path including SemanticTrajectory().
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.city import CityModel
from repro.data.trajectory import GPSPoint, Trajectory


def _point_along(
    waypoints: Sequence[Tuple[float, float]], distance: float
) -> Tuple[float, float]:
    """The point ``distance`` metres along a polyline of waypoints."""
    remaining = distance
    for (ax, ay), (bx, by) in zip(waypoints, waypoints[1:]):
        seg = float(np.hypot(bx - ax, by - ay))
        if seg >= remaining or seg == 0.0:
            if seg == 0.0:
                continue
            frac = remaining / seg
            return ax + frac * (bx - ax), ay + frac * (by - ay)
        remaining -= seg
    return waypoints[-1]


@dataclass(frozen=True)
class PlannedStop:
    """One stop of a day plan: where, how long, and why (ground truth)."""

    x: float          # metres east
    y: float          # metres north
    dwell_s: float
    category: str


class DenseTraceGenerator:
    """Generates dense GPS trajectories over a shared city plan.

    Parameters
    ----------
    city:
        The shared :class:`CityModel` (projection + venue geometry).
    sample_s:
        Sampling period of the simulated GPS receiver.
    speed_mps:
        Walking/driving speed between stops.
    noise_m:
        Standard deviation of the per-fix Gaussian position error.
    routing:
        ``"straight"`` legs travel point to point; ``"manhattan"`` legs
        follow the road grid (east-west first, then north-south via a
        corner waypoint) — the realistic shape for this block city.
    """

    def __init__(
        self,
        city: CityModel,
        seed: int = 47,
        sample_s: float = 30.0,
        speed_mps: float = 8.0,
        noise_m: float = 8.0,
        routing: str = "straight",
    ) -> None:
        if sample_s <= 0 or speed_mps <= 0 or noise_m < 0:
            raise ValueError("sampling, speed must be positive; noise >= 0")
        if routing not in ("straight", "manhattan"):
            raise ValueError("routing must be 'straight' or 'manhattan'")
        self.city = city
        self.seed = seed
        self.sample_s = sample_s
        self.speed_mps = speed_mps
        self.noise_m = noise_m
        self.routing = routing

    def _random_stop(
        self, category: str, dwell_s: float, rng: np.random.Generator
    ) -> PlannedStop:
        blocks = self.city.blocks_of(category)
        if not blocks:
            raise ValueError(f"city has no block for {category!r}")
        block = blocks[int(rng.integers(len(blocks)))]
        plazas = self.city.plazas(block)
        x, y = plazas[int(rng.integers(len(plazas)))]
        return PlannedStop(float(x), float(y), dwell_s, category)

    def default_day_plan(
        self, rng: np.random.Generator
    ) -> List[PlannedStop]:
        """Home -> office -> restaurant -> home with realistic dwells."""
        return [
            self._random_stop("Residence", rng.uniform(1800, 3600), rng),
            self._random_stop(
                "Business & Office", rng.uniform(6 * 3600, 9 * 3600), rng
            ),
            self._random_stop("Restaurant", rng.uniform(2400, 4800), rng),
            self._random_stop("Residence", rng.uniform(1800, 3600), rng),
        ]

    def generate_trace(
        self,
        traj_id: int,
        plan: Optional[Sequence[PlannedStop]] = None,
        start_t: float = 6.0 * 3600.0,
    ) -> Tuple[Trajectory, List[PlannedStop]]:
        """One dense trajectory following ``plan`` (default day plan).

        Returns the trajectory and the plan so callers keep the ground
        truth for accuracy evaluation.
        """
        rng = np.random.default_rng(self.seed * 1009 + traj_id)
        stops = list(plan) if plan is not None else self.default_day_plan(rng)
        if not stops:
            raise ValueError("plan must contain at least one stop")

        points: List[GPSPoint] = []
        t = float(start_t)

        def emit(x: float, y: float, t: float) -> None:
            nx = x + rng.normal(0.0, self.noise_m)
            ny = y + rng.normal(0.0, self.noise_m)
            lon, lat = self.city.projection.to_lonlat(nx, ny)
            points.append(GPSPoint(lon, lat, t))

        prev: Optional[PlannedStop] = None
        for stop in stops:
            if prev is not None:
                # Travel leg at constant speed, optionally via a grid
                # corner so the track follows the road network.
                waypoints = [(prev.x, prev.y)]
                if self.routing == "manhattan" and prev.x != stop.x:
                    waypoints.append((stop.x, prev.y))
                waypoints.append((stop.x, stop.y))
                dist = sum(
                    float(np.hypot(bx - ax, by - ay))
                    for (ax, ay), (bx, by) in zip(waypoints, waypoints[1:])
                )
                travel_s = dist / self.speed_mps
                n_fix = max(int(travel_s // self.sample_s), 1)
                for i in range(1, n_fix + 1):
                    frac = i / (n_fix + 1)
                    x, y = _point_along(waypoints, frac * dist)
                    emit(x, y, t + frac * travel_s)
                t += travel_s
            # Dwell: stationary fixes at the venue.
            n_fix = max(int(stop.dwell_s // self.sample_s), 2)
            for i in range(n_fix):
                emit(stop.x, stop.y, t + i * self.sample_s)
            t += stop.dwell_s
            prev = stop

        return Trajectory(traj_id, points), stops

    def generate(
        self, n_traces: int
    ) -> Tuple[List[Trajectory], List[List[PlannedStop]]]:
        """``n_traces`` day traces with their ground-truth plans."""
        if n_traces < 0:
            raise ValueError("n_traces must be non-negative")
        traces: List[Trajectory] = []
        plans: List[List[PlannedStop]] = []
        for i in range(n_traces):
            trace, plan = self.generate_trace(i)
            traces.append(trace)
            plans.append(list(plan))
        return traces, plans
