"""Synthetic Shanghai datasets standing in for the paper's proprietary data.

The paper evaluates on 2.2e7 Shanghai taxi journeys (April 2015) and a
1.2e6-entry AMAP POI snapshot, neither of which is publicly available.
This package builds the closest laptop-scale equivalents:

- :mod:`repro.data.categories` — the 15 major / 98 minor POI taxonomy
  with Table 3's category proportions;
- :mod:`repro.data.city` — a synthetic city plan with semantic blocks and
  multi-purpose skyscrapers (the two homogeneity cases of Definition 3);
- :mod:`repro.data.poi` — POI placement inside that plan;
- :mod:`repro.data.taxi` — an agent-based taxi-trip simulator producing
  pick-up/drop-off stay points with GPS noise and card-linked passengers;
- :mod:`repro.data.checkins` — a biased check-in simulator that recreates
  Table 1's semantic-bias phenomenon;
- :mod:`repro.data.io` — CSV round-trips for every dataset.
"""

from repro.data.categories import (
    CATEGORY_TABLE,
    MAJOR_CATEGORIES,
    MINOR_CATEGORIES,
    category_distribution,
    major_of_minor,
)
from repro.data.city import CityModel, CityBlock, Skyscraper
from repro.data.checkins import CheckinSimulator, CityCheckinProfile
from repro.data.poi import POI, POIGenerator
from repro.data.taxi import ShanghaiTaxiSimulator, TaxiDataset, TaxiTrip
from repro.data.trajectory import (
    GPSPoint,
    SemanticTrajectory,
    StayPoint,
    Trajectory,
)

__all__ = [
    "CATEGORY_TABLE",
    "CheckinSimulator",
    "CityBlock",
    "CityCheckinProfile",
    "CityModel",
    "GPSPoint",
    "MAJOR_CATEGORIES",
    "MINOR_CATEGORIES",
    "POI",
    "POIGenerator",
    "SemanticTrajectory",
    "ShanghaiTaxiSimulator",
    "Skyscraper",
    "StayPoint",
    "TaxiDataset",
    "TaxiTrip",
    "Trajectory",
    "category_distribution",
    "major_of_minor",
]
