"""Dataset validation for user-provided POI and trajectory data.

The pipeline accepts any data matching the CSV formats of
:mod:`repro.data.io`; before an expensive mining run it pays to check
the inputs are sane.  :func:`validate_dataset` runs the checks the
algorithms implicitly depend on and returns a structured report:

- coordinates inside WGS-84 bounds and within a plausible city extent;
- stay points time-ordered within each trajectory;
- POI density sufficient for Algorithm 1's ``MinPts`` to ever hold;
- category coverage (recognition can only emit tags that exist);
- trajectory length distribution (PrefixSpan needs length >= 2).

Failures are reported, not raised, so callers can decide what is fatal;
``report.ok`` summarises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.data.poi import POI, poi_lonlat_array
from repro.data.trajectory import SemanticTrajectory
from repro.geo.index import GridIndex
from repro.geo.projection import LocalProjection


@dataclass
class Issue:
    """One validation finding."""

    severity: str  # "error" | "warning"
    code: str
    message: str


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_dataset`."""

    issues: List[Issue] = field(default_factory=list)
    n_pois: int = 0
    n_trajectories: int = 0
    n_stay_points: int = 0
    extent_km: float = 0.0
    median_poi_neighbours_30m: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no error-severity issue was found."""
        return not any(i.severity == "error" for i in self.issues)

    def errors(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == "error"]

    def warnings(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == "warning"]

    def _add(self, severity: str, code: str, message: str) -> None:
        self.issues.append(Issue(severity, code, message))


def validate_dataset(
    pois: Sequence[POI],
    trajectories: Sequence[SemanticTrajectory],
    min_pts: int = 5,
    eps_p_m: float = 30.0,
    max_extent_km: float = 200.0,
) -> ValidationReport:
    """Run all input checks; never raises on bad data."""
    report = ValidationReport(
        n_pois=len(pois),
        n_trajectories=len(trajectories),
        n_stay_points=sum(len(st) for st in trajectories),
    )

    if not pois:
        report._add("error", "no-pois", "POI dataset is empty")
    if not trajectories:
        report._add("error", "no-trajectories", "trajectory dataset is empty")
    if not report.ok:
        return report

    _check_coordinates(pois, trajectories, max_extent_km, report)
    _check_time_ordering(trajectories, report)
    # The density check projects the POIs; with non-finite or
    # out-of-range coordinates in play the projection itself raises,
    # breaking the never-raise contract — skip it once coordinates are
    # known bad.
    if report.ok:
        _check_poi_density(pois, min_pts, eps_p_m, report)
    _check_lengths(trajectories, report)
    return report


def _check_coordinates(
    pois: Sequence[POI],
    trajectories: Sequence[SemanticTrajectory],
    max_extent_km: float,
    report: ValidationReport,
) -> None:
    lonlat = [(p.lon, p.lat) for p in pois]
    lonlat += [
        (sp.lon, sp.lat) for st in trajectories for sp in st.stay_points
    ]
    arr = np.asarray(lonlat, dtype=float)
    # Non-finite coordinates must be caught here: NaN compares False
    # against every bound, so a plain range check lets NaN rows through
    # and poisons the projection centroid below.
    bad = int(
        (
            ~np.isfinite(arr).all(axis=1)
            | (np.abs(arr[:, 0]) > 180.0)
            | (np.abs(arr[:, 1]) > 90.0)
        ).sum()
    )
    if bad:
        report._add(
            "error", "bad-coordinates",
            f"{bad} coordinates outside WGS-84 bounds",
        )
        return
    projection = LocalProjection.for_points(arr)
    xy = projection.to_meters_array(arr)
    extent_km = float(
        max(xy[:, 0].max() - xy[:, 0].min(), xy[:, 1].max() - xy[:, 1].min())
    ) / 1000.0
    report.extent_km = extent_km
    if extent_km > max_extent_km:
        report._add(
            "warning", "huge-extent",
            f"data spans {extent_km:.0f} km — did two cities get mixed?",
        )


def _check_time_ordering(
    trajectories: Sequence[SemanticTrajectory], report: ValidationReport
) -> None:
    disordered = sum(1 for st in trajectories if not st.is_time_ordered())
    if disordered:
        report._add(
            "error", "time-disorder",
            f"{disordered} trajectories are not time ordered",
        )


def _check_poi_density(
    pois: Sequence[POI],
    min_pts: int,
    eps_p_m: float,
    report: ValidationReport,
) -> None:
    lonlat = poi_lonlat_array(pois)
    projection = LocalProjection.for_points(lonlat)
    xy = projection.to_meters_array(lonlat)
    index = GridIndex(xy, cell_size=max(eps_p_m, 1.0))
    sample = xy[:: max(len(xy) // 500, 1)]
    neighbours = [
        index.count_within(float(x), float(y), eps_p_m) for x, y in sample
    ]
    median = float(np.median(neighbours))
    report.median_poi_neighbours_30m = median
    if median < min_pts:
        report._add(
            "warning", "sparse-pois",
            f"median POI has {median:.0f} neighbours within {eps_p_m:.0f} m "
            f"but Algorithm 1 needs MinPts={min_pts}; expect a fragmented "
            "diagram (lower MinPts or supply denser POIs)",
        )


def _check_lengths(
    trajectories: Sequence[SemanticTrajectory], report: ValidationReport
) -> None:
    lengths = np.array([len(st) for st in trajectories], dtype=np.int64)
    short = int((lengths < 2).sum())
    if short:
        report._add(
            "warning", "short-trajectories",
            f"{short} trajectories have fewer than 2 stay points and "
            "cannot support any pattern",
        )
    tagged = sum(
        1 for st in trajectories for sp in st.stay_points if sp.semantics
    )
    if tagged:
        report._add(
            "warning", "pre-tagged",
            f"{tagged} stay points already carry semantics; recognition "
            "will overwrite them",
        )
