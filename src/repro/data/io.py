"""CSV round-trips for POIs, taxi trips, and mined patterns.

A downstream user will want to persist the (expensive) simulation and
mining outputs; these helpers use the stdlib ``csv`` module with
explicit headers so the files are greppable and diff-friendly.
Semantic properties are serialised as ``|``-joined sorted tags.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple, Union

from repro.data.poi import POI
from repro.data.taxi import TaxiTrip
from repro.data.trajectory import SemanticProperty, SemanticTrajectory, StayPoint

PathLike = Union[str, Path]

_TAG_SEP = "|"


def _tags_to_str(semantics: Iterable[str]) -> str:
    return _TAG_SEP.join(sorted(semantics))


def _str_to_tags(text: str) -> SemanticProperty:
    return frozenset(t for t in text.split(_TAG_SEP) if t)


# -- POIs -------------------------------------------------------------------

POI_FIELDS = ["poi_id", "lon", "lat", "major", "minor", "name"]


def write_pois(path: PathLike, pois: Sequence[POI]) -> None:
    """Write POIs to CSV with a header row."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(POI_FIELDS)
        for p in pois:
            writer.writerow([p.poi_id, p.lon, p.lat, p.major, p.minor, p.name])


def read_pois(path: PathLike) -> List[POI]:
    """Read POIs written by :func:`write_pois`."""
    out: List[POI] = []
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        for row in reader:
            out.append(
                POI(
                    poi_id=int(row["poi_id"]),
                    lon=float(row["lon"]),
                    lat=float(row["lat"]),
                    major=row["major"],
                    minor=row["minor"],
                    name=row["name"],
                )
            )
    return out


# -- taxi trips ---------------------------------------------------------------

TRIP_FIELDS = [
    "trip_id", "passenger_id",
    "pickup_lon", "pickup_lat", "pickup_t",
    "dropoff_lon", "dropoff_lat", "dropoff_t",
    "pickup_truth", "dropoff_truth",
]


def write_trips(path: PathLike, trips: Sequence[TaxiTrip]) -> None:
    """Write taxi trips to CSV; anonymous passengers serialise as ''."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(TRIP_FIELDS)
        for tr in trips:
            writer.writerow([
                tr.trip_id,
                "" if tr.passenger_id is None else tr.passenger_id,
                tr.pickup.lon, tr.pickup.lat, tr.pickup.t,
                tr.dropoff.lon, tr.dropoff.lat, tr.dropoff.t,
                tr.pickup_truth, tr.dropoff_truth,
            ])


def read_trips(path: PathLike) -> List[TaxiTrip]:
    """Read taxi trips written by :func:`write_trips`."""
    out: List[TaxiTrip] = []
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        for row in reader:
            pid = row["passenger_id"]
            out.append(
                TaxiTrip(
                    trip_id=int(row["trip_id"]),
                    passenger_id=None if pid == "" else int(pid),
                    pickup=StayPoint(
                        float(row["pickup_lon"]),
                        float(row["pickup_lat"]),
                        float(row["pickup_t"]),
                    ),
                    dropoff=StayPoint(
                        float(row["dropoff_lon"]),
                        float(row["dropoff_lat"]),
                        float(row["dropoff_t"]),
                    ),
                    pickup_truth=row["pickup_truth"],
                    dropoff_truth=row["dropoff_truth"],
                )
            )
    return out


# -- semantic trajectories -----------------------------------------------------

TRAJ_FIELDS = ["traj_id", "order", "lon", "lat", "t", "semantics"]


def write_semantic_trajectories(
    path: PathLike, trajectories: Sequence[SemanticTrajectory]
) -> None:
    """One row per stay point; ``order`` preserves sequence position."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(TRAJ_FIELDS)
        for st in trajectories:
            for k, sp in enumerate(st.stay_points):
                writer.writerow(
                    [st.traj_id, k, sp.lon, sp.lat, sp.t,
                     _tags_to_str(sp.semantics)]
                )


def read_semantic_trajectories(path: PathLike) -> List[SemanticTrajectory]:
    """Read trajectories written by :func:`write_semantic_trajectories`."""
    rows: List[Tuple[int, int, StayPoint]] = []
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        for row in reader:
            rows.append(
                (
                    int(row["traj_id"]),
                    int(row["order"]),
                    StayPoint(
                        float(row["lon"]),
                        float(row["lat"]),
                        float(row["t"]),
                        _str_to_tags(row["semantics"]),
                    ),
                )
            )
    rows.sort(key=lambda r: (r[0], r[1]))
    out: List[SemanticTrajectory] = []
    for traj_id, _order, sp in rows:
        if not out or out[-1].traj_id != traj_id:
            out.append(SemanticTrajectory(traj_id, []))
        out[-1].stay_points.append(sp)
    return out
