"""CSV round-trips for POIs, taxi trips, and mined patterns.

A downstream user will want to persist the (expensive) simulation and
mining outputs; these helpers use the stdlib ``csv`` module with
explicit headers so the files are greppable and diff-friendly.
Semantic properties are serialised as ``|``-joined sorted tags; a
literal ``|`` or ``\\`` inside a tag is backslash-escaped so every tag
set round-trips exactly (``docs/DATA_FORMATS.md``).

All files are read and written as UTF-8 regardless of platform: venue
and POI names carry non-ASCII characters, and the platform-default
codec (cp1252 on Windows) would silently mangle them across machines.

Two reader families exist:

- ``read_*`` load a whole file and **raise** :class:`MalformedRowError`
  on the first bad record — the right contract for artifacts this
  package wrote itself;
- ``iter_*`` are streaming generators for *raw* corpora: each record is
  validated, malformed rows (bad floats, missing columns, non-finite
  coordinates, negative dwell) are routed to an ``on_bad_row`` sink
  with the row number and reason instead of aborting the run, and the
  ``ingest.rows`` / ``ingest.quarantined`` counters are emitted through
  :mod:`repro.obs`.  The fault-tolerant pipeline runner
  (:mod:`repro.runner`) plugs its quarantine file in as the sink.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.data.poi import POI
from repro.data.taxi import TaxiTrip
from repro.data.trajectory import SemanticProperty, SemanticTrajectory, StayPoint
from repro.ioutil import atomic_write_text
from repro.obs import get_registry

PathLike = Union[str, Path]

_TAG_SEP = "|"
_TAG_ESC = "\\"

#: Marker stored in the ``order`` column for a trajectory that has no
#: stay points, so empty trajectories survive the CSV round-trip
#: instead of silently vanishing from the corpus.
_EMPTY_TRAJ_ORDER = ""


def _tags_to_str(semantics: Iterable[str]) -> str:
    """Serialise a tag set; ``|`` and ``\\`` inside tags are escaped."""
    return _TAG_SEP.join(
        t.replace(_TAG_ESC, _TAG_ESC + _TAG_ESC).replace(
            _TAG_SEP, _TAG_ESC + _TAG_SEP
        )
        for t in sorted(semantics)
    )


def _str_to_tags(text: str) -> SemanticProperty:
    """Parse :func:`_tags_to_str` output, honouring backslash escapes."""
    tags: List[str] = []
    current: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == _TAG_ESC and i + 1 < n:
            current.append(text[i + 1])
            i += 2
        elif ch == _TAG_SEP:
            tags.append("".join(current))
            current = []
            i += 1
        else:
            current.append(ch)
            i += 1
    tags.append("".join(current))
    return frozenset(t for t in tags if t)


# -- record validation --------------------------------------------------------


@dataclass(frozen=True)
class QuarantinedRow:
    """One malformed input record routed around the pipeline.

    ``row_number`` is 1-based over *data* rows (the header is row 0),
    matching what ``awk NR-1`` or a spreadsheet shows after the header.
    """

    row_number: int
    reason: str
    raw: str


#: Sink signature for malformed records (see :class:`repro.runner.Quarantine`).
BadRowSink = Callable[[QuarantinedRow], None]


class MalformedRowError(ValueError):
    """A CSV record failed validation and no quarantine sink was given."""

    def __init__(self, row: QuarantinedRow) -> None:
        super().__init__(
            f"row {row.row_number}: {row.reason} (raw: {row.raw!r})"
        )
        self.row = row


def _require(row: Dict[str, Optional[str]], field: str) -> str:
    value = row.get(field)
    if value is None:
        raise ValueError(f"missing column {field!r}")
    return value


def _finite_float(row: Dict[str, Optional[str]], field: str) -> float:
    text = _require(row, field)
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"invalid float {text!r} in column {field!r}") from None
    if not math.isfinite(value):
        raise ValueError(f"non-finite value {text!r} in column {field!r}")
    return value


def _coordinate(
    row: Dict[str, Optional[str]], lon_field: str, lat_field: str
) -> Tuple[float, float]:
    lon = _finite_float(row, lon_field)
    lat = _finite_float(row, lat_field)
    if not -180.0 <= lon <= 180.0:
        raise ValueError(f"longitude {lon!r} out of range in {lon_field!r}")
    if not -90.0 <= lat <= 90.0:
        raise ValueError(f"latitude {lat!r} out of range in {lat_field!r}")
    return lon, lat


def _raw_text(row: Dict[str, Optional[str]]) -> str:
    return ",".join("" if v is None else str(v) for v in row.values())


def _dispatch_bad_row(
    bad: QuarantinedRow, on_bad_row: Optional[BadRowSink]
) -> None:
    get_registry().counter("ingest.quarantined").inc()
    if on_bad_row is None:
        raise MalformedRowError(bad)
    on_bad_row(bad)


def _atomic_csv(path: PathLike, emit: "Callable[[Any], None]") -> None:
    """Build a CSV payload in memory and write it atomically.

    ``csv.writer`` over ``StringIO`` emits the same ``\\r\\n``
    terminators as the old ``open(path, "w", newline="")`` spelling, so
    artifact bytes (hence checkpoint SHA-256 digests) are unchanged;
    :func:`repro.ioutil.atomic_write_text` writes them without newline
    translation.  Artifacts here are modest (bounded corpora or epoch
    slices), so buffering whole files trades negligible memory for
    crash atomicity.
    """
    buffer = io.StringIO()
    emit(csv.writer(buffer))
    atomic_write_text(path, buffer.getvalue())


# -- POIs -------------------------------------------------------------------

POI_FIELDS = ["poi_id", "lon", "lat", "major", "minor", "name"]


def write_pois(path: PathLike, pois: Sequence[POI]) -> None:
    """Write POIs to CSV with a header row, atomically."""

    def emit(writer: Any) -> None:
        writer.writerow(POI_FIELDS)
        for p in pois:
            writer.writerow([p.poi_id, p.lon, p.lat, p.major, p.minor, p.name])

    _atomic_csv(path, emit)


def read_pois(path: PathLike) -> List[POI]:
    """Read POIs written by :func:`write_pois`."""
    out: List[POI] = []
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.DictReader(f)
        for row in reader:
            out.append(
                POI(
                    poi_id=int(row["poi_id"]),
                    lon=float(row["lon"]),
                    lat=float(row["lat"]),
                    major=row["major"],
                    minor=row["minor"],
                    name=row["name"],
                )
            )
    return out


# -- taxi trips ---------------------------------------------------------------

TRIP_FIELDS = [
    "trip_id", "passenger_id",
    "pickup_lon", "pickup_lat", "pickup_t",
    "dropoff_lon", "dropoff_lat", "dropoff_t",
    "pickup_truth", "dropoff_truth",
]


def write_trips(path: PathLike, trips: Iterable[TaxiTrip]) -> None:
    """Write taxi trips to CSV, atomically; anonymous passengers
    serialise as ''."""

    def emit(writer: Any) -> None:
        writer.writerow(TRIP_FIELDS)
        for tr in trips:
            writer.writerow([
                tr.trip_id,
                "" if tr.passenger_id is None else tr.passenger_id,
                tr.pickup.lon, tr.pickup.lat, tr.pickup.t,
                tr.dropoff.lon, tr.dropoff.lat, tr.dropoff.t,
                tr.pickup_truth, tr.dropoff_truth,
            ])

    _atomic_csv(path, emit)


def _parse_trip(row: Dict[str, Optional[str]]) -> TaxiTrip:
    """One validated trip record; raises ``ValueError`` with the reason."""
    trip_text = _require(row, "trip_id")
    try:
        trip_id = int(trip_text)
    except ValueError:
        raise ValueError(f"invalid integer trip_id {trip_text!r}") from None
    pid_text = _require(row, "passenger_id")
    if pid_text == "":
        passenger_id: Optional[int] = None
    else:
        try:
            passenger_id = int(pid_text)
        except ValueError:
            raise ValueError(
                f"invalid integer passenger_id {pid_text!r}"
            ) from None
    pickup_lon, pickup_lat = _coordinate(row, "pickup_lon", "pickup_lat")
    dropoff_lon, dropoff_lat = _coordinate(row, "dropoff_lon", "dropoff_lat")
    pickup_t = _finite_float(row, "pickup_t")
    dropoff_t = _finite_float(row, "dropoff_t")
    if dropoff_t < pickup_t:
        raise ValueError(
            f"negative dwell: dropoff_t {dropoff_t!r} precedes "
            f"pickup_t {pickup_t!r}"
        )
    return TaxiTrip(
        trip_id=trip_id,
        passenger_id=passenger_id,
        pickup=StayPoint(pickup_lon, pickup_lat, pickup_t),
        dropoff=StayPoint(dropoff_lon, dropoff_lat, dropoff_t),
        pickup_truth=_require(row, "pickup_truth"),
        dropoff_truth=_require(row, "dropoff_truth"),
    )


def iter_trips(
    path: PathLike, on_bad_row: Optional[BadRowSink] = None
) -> Iterator[TaxiTrip]:
    """Stream taxi trips from CSV, validating every record.

    Malformed rows — unparseable numbers, missing columns, non-finite
    or out-of-range coordinates, negative dwell (``dropoff_t <
    pickup_t``) — go to ``on_bad_row`` with their 1-based data-row
    number and a reason; without a sink the first bad row raises
    :class:`MalformedRowError`.  Emits ``ingest.rows`` /
    ``ingest.quarantined`` counters through :mod:`repro.obs`.
    """
    reg = get_registry()
    rows = reg.counter("ingest.rows")
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.DictReader(f)
        for row_number, row in enumerate(reader, start=1):
            rows.inc()
            try:
                trip = _parse_trip(row)
            except ValueError as exc:
                _dispatch_bad_row(
                    QuarantinedRow(row_number, str(exc), _raw_text(row)),
                    on_bad_row,
                )
                continue
            yield trip


def read_trips(
    path: PathLike, on_bad_row: Optional[BadRowSink] = None
) -> List[TaxiTrip]:
    """Read taxi trips written by :func:`write_trips`.

    Strict by default: raises :class:`MalformedRowError` on the first
    invalid record; pass ``on_bad_row`` to quarantine instead.
    """
    return list(iter_trips(path, on_bad_row))


# -- semantic trajectories -----------------------------------------------------

TRAJ_FIELDS = ["traj_id", "order", "lon", "lat", "t", "semantics"]


def write_semantic_trajectories(
    path: PathLike, trajectories: Iterable[SemanticTrajectory]
) -> None:
    """One row per stay point; ``order`` preserves sequence position.

    A trajectory with zero stay points emits a single marker row with
    an empty ``order`` column, so the trajectory count is preserved
    across the round-trip.  The write is atomic: checkpoint readers
    (runner resume, stream epoch restore) never see a torn file.
    """

    def emit(writer: Any) -> None:
        writer.writerow(TRAJ_FIELDS)
        for st in trajectories:
            if not st.stay_points:
                writer.writerow(
                    [st.traj_id, _EMPTY_TRAJ_ORDER, "", "", "", ""]
                )
                continue
            for k, sp in enumerate(st.stay_points):
                writer.writerow(
                    [st.traj_id, k, sp.lon, sp.lat, sp.t,
                     _tags_to_str(sp.semantics)]
                )

    _atomic_csv(path, emit)


def _parse_traj_row(
    row: Dict[str, Optional[str]]
) -> Tuple[int, int, Optional[StayPoint]]:
    """``(traj_id, order, stay_point)``; empty-trajectory markers parse
    to ``(traj_id, -1, None)``."""
    traj_text = _require(row, "traj_id")
    try:
        traj_id = int(traj_text)
    except ValueError:
        raise ValueError(f"invalid integer traj_id {traj_text!r}") from None
    order_text = _require(row, "order")
    if order_text == _EMPTY_TRAJ_ORDER:
        return traj_id, -1, None
    try:
        order = int(order_text)
    except ValueError:
        raise ValueError(f"invalid integer order {order_text!r}") from None
    if order < 0:
        raise ValueError(f"negative order {order!r}")
    lon, lat = _coordinate(row, "lon", "lat")
    t = _finite_float(row, "t")
    sp = StayPoint(lon, lat, t, _str_to_tags(_require(row, "semantics")))
    return traj_id, order, sp


def iter_semantic_trajectories(
    path: PathLike, on_bad_row: Optional[BadRowSink] = None
) -> Iterator[SemanticTrajectory]:
    """Stream trajectories written by :func:`write_semantic_trajectories`.

    Rows belonging to one trajectory must be contiguous in the file (as
    the writer emits them); stay points are ordered by their ``order``
    column within each trajectory.  Validation and quarantine semantics
    match :func:`iter_trips`.  A quarantined row drops only that stay
    point, never the whole trajectory.
    """
    reg = get_registry()
    rows = reg.counter("ingest.rows")
    current_id: Optional[int] = None
    current: List[Tuple[int, StayPoint]] = []

    def flush(traj_id: int) -> SemanticTrajectory:
        current.sort(key=lambda pair: pair[0])
        return SemanticTrajectory(traj_id, [sp for _o, sp in current])

    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.DictReader(f)
        for row_number, row in enumerate(reader, start=1):
            rows.inc()
            try:
                traj_id, order, sp = _parse_traj_row(row)
            except ValueError as exc:
                _dispatch_bad_row(
                    QuarantinedRow(row_number, str(exc), _raw_text(row)),
                    on_bad_row,
                )
                continue
            if traj_id != current_id:
                if current_id is not None:
                    yield flush(current_id)
                current_id = traj_id
                current = []
            if sp is not None:
                current.append((order, sp))
    if current_id is not None:
        yield flush(current_id)


def read_semantic_trajectories(
    path: PathLike, on_bad_row: Optional[BadRowSink] = None
) -> List[SemanticTrajectory]:
    """Read trajectories written by :func:`write_semantic_trajectories`.

    Unlike the streaming iterator this loader tolerates rows of one
    trajectory being scattered through the file: trajectories are
    ordered by id and stay points by ``order``.  Zero-stay-point
    trajectories written by the marker row are preserved.
    """
    reg = get_registry()
    rows = reg.counter("ingest.rows")
    by_id: Dict[int, List[Tuple[int, StayPoint]]] = {}
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.DictReader(f)
        for row_number, row in enumerate(reader, start=1):
            rows.inc()
            try:
                traj_id, order, sp = _parse_traj_row(row)
            except ValueError as exc:
                _dispatch_bad_row(
                    QuarantinedRow(row_number, str(exc), _raw_text(row)),
                    on_bad_row,
                )
                continue
            slot = by_id.setdefault(traj_id, [])
            if sp is not None:
                slot.append((order, sp))
    out: List[SemanticTrajectory] = []
    for traj_id in sorted(by_id):
        pairs = sorted(by_id[traj_id], key=lambda pair: pair[0])
        out.append(SemanticTrajectory(traj_id, [sp for _o, sp in pairs]))
    return out
