"""Synthetic city plan used to place POIs and anchor passenger routines.

The plan models the two spatial regularities that motivate Definition 3:

- *semantic homogeneity* — the city is a road grid of rectangular blocks,
  each zoned for a dominant major category (a residential quarter, a
  shopping street, an office district, ...), so POIs near each other tend
  to share semantics;
- *spatial homogeneity* — selected blocks contain multi-purpose
  skyscrapers: vertical stacks of POIs of very different categories
  within a footprint smaller than the paper's ``d_v = 15 m`` threshold
  (the Shanghai Tower case).

A handful of special venues (airport, railway station, children's
hospital) reproduce the Figure 14(g)/(h) case studies.  All geometry is
generated in local metres and exposed in both metres and lon/lat through
the city's :class:`~repro.geo.LocalProjection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.categories import MAJOR_CATEGORIES
from repro.geo.projection import LocalProjection
from repro.types import MetersArray, MetersXY

#: Anchor of the synthetic city, roughly People's Square, Shanghai.
SHANGHAI_LON = 121.47
SHANGHAI_LAT = 31.23

#: Zoning mixture per ring distance from the centre (fractions of blocks).
_CENTRAL_ZONING = [
    ("Business & Office", 0.30),
    ("Shop & Market", 0.22),
    ("Restaurant", 0.16),
    ("Entertainment", 0.10),
    ("Financial Service", 0.07),
    ("Accommodation & Hotel", 0.06),
    ("Public Service", 0.05),
    ("Tourism", 0.04),
]
_MIDDLE_ZONING = [
    ("Residence", 0.38),
    ("Shop & Market", 0.14),
    ("Restaurant", 0.12),
    ("Business & Office", 0.10),
    ("Technology & Education", 0.08),
    ("Entertainment", 0.06),
    ("Public Service", 0.05),
    ("Sports", 0.04),
    ("Government Agency", 0.03),
]
_OUTER_ZONING = [
    ("Residence", 0.48),
    ("Industry", 0.16),
    ("Shop & Market", 0.10),
    ("Public Service", 0.08),
    ("Technology & Education", 0.06),
    ("Restaurant", 0.06),
    ("Traffic Stations", 0.06),
]


@dataclass(frozen=True)
class CityBlock:
    """One zoned rectangular block of the road grid."""

    block_id: int
    cx: float          # centre east offset, metres
    cy: float          # centre north offset, metres
    half: float        # half edge length of the buildable square, metres
    category: str      # dominant major category of the block
    venue: Optional[str] = None  # special venue label, e.g. "airport"

    def contains(self, x: float, y: float) -> bool:
        return abs(x - self.cx) <= self.half and abs(y - self.cy) <= self.half

    def sample_point(self, rng: np.random.Generator) -> MetersXY:
        """Uniform point inside the buildable square of this block."""
        x = self.cx + rng.uniform(-self.half, self.half)
        y = self.cy + rng.uniform(-self.half, self.half)
        return x, y


@dataclass(frozen=True)
class Skyscraper:
    """A multi-purpose tower: many categories stacked on one footprint."""

    tower_id: int
    x: float
    y: float
    categories: Tuple[str, ...]
    footprint_radius: float = 8.0  # POIs scatter within this radius (m)


@dataclass
class CityModel:
    """Zoned block grid + skyscrapers + special venues.

    Build one with :meth:`generate`; it is then shared by the POI
    generator and the taxi simulator so venues, homes, and workplaces
    all agree on geography.
    """

    projection: LocalProjection
    blocks: List[CityBlock]
    skyscrapers: List[Skyscraper]
    extent_m: float
    block_size_m: float
    blocks_by_category: Dict[str, List[CityBlock]] = field(default_factory=dict)
    seed: int = 7
    plazas_per_block: int = 5
    _plaza_cache: Dict[int, MetersArray] = field(default_factory=dict, repr=False)

    def plazas(self, block: CityBlock, clearance_m: float = 24.0) -> MetersArray:
        """Deterministic activity hot-spot centres of a block, ``(k, 2)`` m.

        Both the POI generator and the taxi simulator anchor to these
        plazas, so stay points land near the POIs that explain them —
        the correlation the recognition step exploits.
        """
        cached = self._plaza_cache.get(block.block_id)
        if cached is not None:
            return cached
        rng = np.random.default_rng(self.seed * 100_003 + block.block_id)
        margin = max(block.half - clearance_m, 1.0)
        xs = block.cx + rng.uniform(-margin, margin, self.plazas_per_block)
        ys = block.cy + rng.uniform(-margin, margin, self.plazas_per_block)
        plazas = np.stack([xs, ys], axis=1)
        self._plaza_cache[block.block_id] = plazas
        return plazas

    @classmethod
    def generate(
        cls,
        extent_m: float = 12_000.0,
        block_size_m: float = 400.0,
        road_width_m: float = 30.0,
        skyscraper_rate: float = 0.08,
        seed: int = 7,
        origin_lon: float = SHANGHAI_LON,
        origin_lat: float = SHANGHAI_LAT,
    ) -> "CityModel":
        """Generate a city plan.

        Parameters
        ----------
        extent_m:
            Edge length of the square city, metres.
        block_size_m:
            Grid pitch; each block's buildable square is the pitch minus
            the road width.
        skyscraper_rate:
            Fraction of central blocks hosting a mixed-use tower.
        """
        if extent_m <= 0 or block_size_m <= 0:
            raise ValueError("extent and block size must be positive")
        if block_size_m <= road_width_m:
            raise ValueError("block size must exceed road width")
        rng = np.random.default_rng(seed)
        n_side = max(3, int(extent_m // block_size_m))
        half_city = n_side * block_size_m / 2.0
        half_block = (block_size_m - road_width_m) / 2.0

        blocks: List[CityBlock] = []
        block_id = 0
        for gy in range(n_side):
            for gx in range(n_side):
                cx = -half_city + (gx + 0.5) * block_size_m
                cy = -half_city + (gy + 0.5) * block_size_m
                ring = max(abs(cx), abs(cy)) / half_city  # 0 centre .. 1 edge
                category = _draw_zone_category(ring, rng)
                blocks.append(
                    CityBlock(block_id, cx, cy, half_block, category)
                )
                block_id += 1

        blocks = _assign_special_venues(blocks, half_city, rng)
        skyscrapers = _place_skyscrapers(
            blocks, half_city, skyscraper_rate, rng
        )

        by_cat: Dict[str, List[CityBlock]] = {c: [] for c in MAJOR_CATEGORIES}
        for block in blocks:
            by_cat[block.category].append(block)
        # Guarantee every category has at least one home block so the POI
        # generator never strands a Table 3 category.
        homeless = [c for c, lst in by_cat.items() if not lst]
        ordinary = [b for b in blocks if b.venue is None]
        for cat in homeless:
            victim = ordinary[int(rng.integers(len(ordinary)))]
            replacement = CityBlock(
                victim.block_id, victim.cx, victim.cy, victim.half, cat
            )
            blocks[victim.block_id] = replacement
            by_cat[victim.category].remove(victim)
            by_cat[cat].append(replacement)
            ordinary = [b for b in blocks if b.venue is None]

        return cls(
            projection=LocalProjection(origin_lon, origin_lat),
            blocks=blocks,
            skyscrapers=skyscrapers,
            extent_m=n_side * block_size_m,
            block_size_m=block_size_m,
            blocks_by_category=by_cat,
            seed=seed,
        )

    # -- lookup helpers -------------------------------------------------

    def blocks_of(self, category: str) -> List[CityBlock]:
        """Blocks zoned for ``category`` (may be empty only for venues)."""
        return self.blocks_by_category.get(category, [])

    def venue_block(self, venue: str) -> CityBlock:
        """The special-venue block with label ``venue``.

        Raises ``KeyError`` when the venue does not exist.
        """
        for block in self.blocks:
            if block.venue == venue:
                return block
        raise KeyError(f"no venue named {venue!r}")

    @property
    def venues(self) -> Dict[str, CityBlock]:
        return {b.venue: b for b in self.blocks if b.venue is not None}

    def block_at(self, x: float, y: float) -> Optional[CityBlock]:
        """Block whose buildable square contains ``(x, y)``, if any."""
        half_city = self.extent_m / 2.0
        gx = int((x + half_city) // self.block_size_m)
        gy = int((y + half_city) // self.block_size_m)
        n_side = int(self.extent_m // self.block_size_m)
        if not (0 <= gx < n_side and 0 <= gy < n_side):
            return None
        block = self.blocks[gy * n_side + gx]
        return block if block.contains(x, y) else None


def _draw_zone_category(ring: float, rng: np.random.Generator) -> str:
    """Sample a block category for the given normalised ring distance."""
    if ring < 0.33:
        zoning = _CENTRAL_ZONING
    elif ring < 0.7:
        zoning = _MIDDLE_ZONING
    else:
        zoning = _OUTER_ZONING
    names = [n for n, _w in zoning]
    weights = np.array([w for _n, w in zoning], dtype=float)
    weights /= weights.sum()
    return str(rng.choice(names, p=weights))


def _assign_special_venues(
    blocks: List[CityBlock], half_city: float, rng: np.random.Generator
) -> List[CityBlock]:
    """Rezone fixed blocks into the Figure 14 case-study venues."""
    venue_specs = [
        # (venue label, category, preferred corner as sign pair)
        ("airport", "Traffic Stations", (1, 1)),
        ("railway_station", "Traffic Stations", (-1, 1)),
        ("childrens_hospital", "Medical Service", (-1, -1)),
        ("university", "Technology & Education", (1, -1)),
    ]
    out = list(blocks)
    for venue, category, (sx, sy) in venue_specs:
        target_x = sx * half_city * 0.82
        target_y = sy * half_city * 0.82
        best = min(
            range(len(out)),
            key=lambda i: (out[i].cx - target_x) ** 2
            + (out[i].cy - target_y) ** 2,
        )
        b = out[best]
        out[best] = CityBlock(b.block_id, b.cx, b.cy, b.half, category, venue)
    return out


def _place_skyscrapers(
    blocks: Sequence[CityBlock],
    half_city: float,
    rate: float,
    rng: np.random.Generator,
) -> List[Skyscraper]:
    """Mixed-use towers in central blocks (the Shanghai Tower pattern)."""
    mixed_pool = [
        "Business & Office", "Shop & Market", "Restaurant",
        "Accommodation & Hotel", "Entertainment", "Traffic Stations",
        "Financial Service",
    ]
    towers: List[Skyscraper] = []
    tower_id = 0
    for block in blocks:
        ring = max(abs(block.cx), abs(block.cy)) / half_city
        if block.venue is None and ring < 0.4 and rng.random() < rate:
            x, y = block.sample_point(rng)
            k = int(rng.integers(3, 6))
            cats = tuple(
                rng.choice(mixed_pool, size=k, replace=False).tolist()
            )
            towers.append(Skyscraper(tower_id, x, y, cats))
            tower_id += 1
    return towers
