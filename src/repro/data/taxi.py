"""Agent-based Shanghai taxi simulator (stand-in for the April 2015 logs).

The paper's corpus records 2.2e7 journeys; each journey is a pick-up and
a drop-off, which the experiments use as stay points directly, and 20%
of passengers are card-linked so their journeys of a day chain into
movement trajectories with three or more stay points.

This simulator reproduces those properties at laptop scale:

- card-linked *passengers* carry a home anchor, a work anchor, and
  favourite leisure anchors, all placed on block plazas of the shared
  :class:`~repro.data.city.CityModel` — the same plazas POIs cluster on,
  so stay points fall near the POIs that explain them;
- weekday routines emit a morning commute and an evening chain
  (office -> home, or office -> shop/restaurant -> home with a short
  dwell), weekend routines emit leisure outings;
- rare routines visit the airport and the children's hospital venues so
  the Figure 14(g)/(h) case studies have signal;
- anonymous (non-card) passengers emit single journeys drawn from the
  same origin/destination process, inflating support like the other 80%
  of the paper's corpus;
- pick-up/drop-off coordinates carry Gaussian GPS noise, and travel
  times follow distance at an effective downtown speed so the average
  journey lasts ~20-30 minutes (the Figure 13 knee at delta_t = 15 min).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.city import CityBlock, CityModel
from repro.data.trajectory import SemanticTrajectory, StayPoint
from repro.types import Float64Array, MetersXY

SECONDS_PER_DAY = 86_400.0
#: Simulation epoch: Wednesday 2015-04-01 00:00 local, as POSIX-like
#: seconds.  Only weekday arithmetic matters, so the zero point is
#: arbitrary; day index 0 is a Wednesday to match April 2015.
EPOCH_WEEKDAY = 2  # 0=Mon


@dataclass(frozen=True)
class TaxiTrip:
    """One taxi journey: pick-up and drop-off stay points plus ground truth.

    ``pickup_truth``/``dropoff_truth`` record the true venue category the
    passenger visited — unavailable in the paper's real data, used here
    for recognition-accuracy evaluation.
    """

    trip_id: int
    passenger_id: Optional[int]  # None for anonymous (non card-linked)
    pickup: StayPoint
    dropoff: StayPoint
    pickup_truth: str
    dropoff_truth: str

    @property
    def duration_s(self) -> float:
        return self.dropoff.t - self.pickup.t


@dataclass(frozen=True)
class Passenger:
    """A card-linked commuter with fixed activity anchors."""

    passenger_id: int
    home: MetersXY
    work: MetersXY
    home_category: str
    work_category: str
    leisure: Tuple[Tuple[float, float, str], ...]  # (x, y, category)


@dataclass
class TaxiDataset:
    """Simulator output: journeys plus derived views used by the pipeline."""

    city: CityModel
    trips: List[TaxiTrip]
    passengers: List[Passenger]
    days: int

    def stay_points(self) -> List[StayPoint]:
        """Every pick-up and drop-off, in trip order (Figure 8's dataset)."""
        out: List[StayPoint] = []
        for trip in self.trips:
            out.append(trip.pickup)
            out.append(trip.dropoff)
        return out

    def single_trip_trajectories(self) -> List[SemanticTrajectory]:
        """One two-point semantic trajectory per journey (80% of data)."""
        return [
            SemanticTrajectory(trip.trip_id, [trip.pickup, trip.dropoff])
            for trip in self.trips
        ]

    def linked_trajectories(
        self, min_points: int = 3
    ) -> List[SemanticTrajectory]:
        """Card-linked day trajectories with at least ``min_points`` stays.

        Mirrors the paper: "by linking the consecutive journey
        trajectories for each passenger in a day, we recover many long
        movement trajectories with at least three stay points".
        """
        return link_trips_by_day(self.trips, min_points)

    def linked_truths(self, min_points: int = 3) -> List[List[str]]:
        """Ground-truth category per stay point, parallel to
        :meth:`linked_trajectories`.

        Both views derive from :func:`group_card_trips_by_day`, so the
        k-th truth list always describes the k-th linked trajectory and
        the i-th truth its i-th stay point.
        """
        out: List[List[str]] = []
        for day_trips in group_card_trips_by_day(self.trips):
            truths: List[str] = []
            for trip in day_trips:
                truths.append(trip.pickup_truth)
                truths.append(trip.dropoff_truth)
            if len(truths) >= min_points:
                out.append(truths)
        return out

    def mining_trajectories(self) -> List[SemanticTrajectory]:
        """The mining corpus: card-linked chains plus anonymous journeys."""
        return trips_to_mining_trajectories(self.trips)


def group_card_trips_by_day(
    trips: Sequence[TaxiTrip],
) -> List[List[TaxiTrip]]:
    """Card-linked journeys grouped per (passenger, day), in a canonical
    order: groups sorted by (passenger_id, day), trips within a group by
    pick-up time.

    This is the single source of the grouping that both
    :func:`link_trips_by_day` (trajectories) and
    :meth:`TaxiDataset.linked_truths` (ground truth) derive from —
    keeping the two views index-parallel by construction instead of by
    duplicated logic.
    """
    grouped: Dict[Tuple[int, int], List[TaxiTrip]] = {}
    for trip in trips:
        if trip.passenger_id is None:
            continue
        day = int(trip.pickup.t // SECONDS_PER_DAY)
        grouped.setdefault((trip.passenger_id, day), []).append(trip)
    return [
        sorted(day_trips, key=lambda tr: tr.pickup.t)
        for _key, day_trips in sorted(grouped.items())
    ]


def link_trips_by_day(
    trips: Sequence[TaxiTrip], min_points: int = 3
) -> List[SemanticTrajectory]:
    """Chain each card-linked passenger's journeys of a day (Section 5)."""
    out: List[SemanticTrajectory] = []
    next_id = 0
    for day_trips in group_card_trips_by_day(trips):
        stays: List[StayPoint] = []
        for trip in day_trips:
            stays.append(trip.pickup)
            stays.append(trip.dropoff)
        if len(stays) >= min_points:
            out.append(SemanticTrajectory(next_id, stays))
            next_id += 1
    return out


def trips_to_mining_trajectories(
    trips: Sequence[TaxiTrip],
) -> List[SemanticTrajectory]:
    """Full mining corpus from raw journeys: card-linked day chains plus
    one two-stop trajectory per anonymous journey, with unique ids."""
    linked = link_trips_by_day(trips)
    singles = [
        SemanticTrajectory(0, [trip.pickup, trip.dropoff])
        for trip in trips
        if trip.passenger_id is None
    ]
    out: List[SemanticTrajectory] = []
    for i, st in enumerate(linked + singles):
        out.append(SemanticTrajectory(i, st.stay_points))
    return out


def day_weekday(t: float) -> int:
    """Weekday of a simulation timestamp, 0=Monday."""
    return (int(t // SECONDS_PER_DAY) + EPOCH_WEEKDAY) % 7


def is_weekend(t: float) -> bool:
    return day_weekday(t) >= 5


def time_of_day_bucket(t: float) -> str:
    """Morning / afternoon / night bucket of Figure 14."""
    hour = (t % SECONDS_PER_DAY) / 3600.0
    if 5.0 <= hour < 12.0:
        return "morning"
    if 12.0 <= hour < 18.0:
        return "afternoon"
    return "night"


def week_bucket(t: float) -> str:
    """One of the six Figure 14(a-f) buckets, e.g. ``weekday-morning``."""
    prefix = "weekend" if is_weekend(t) else "weekday"
    return f"{prefix}-{time_of_day_bucket(t)}"


#: Evening destination mix after work (category, probability).  "home"
#: is handled separately; these are the intermediate-stop categories of
#: patterns like Office -> Supermarket -> Residence.
_EVENING_STOPS = [
    ("Shop & Market", 0.40),
    ("Restaurant", 0.30),
    ("Entertainment", 0.12),
    ("Sports", 0.10),
    ("Medical Service", 0.08),
]
_WEEKEND_STOPS = [
    ("Shop & Market", 0.30),
    ("Entertainment", 0.25),
    ("Restaurant", 0.20),
    ("Tourism", 0.15),
    ("Sports", 0.10),
]


class ShanghaiTaxiSimulator:
    """Generates a :class:`TaxiDataset` over a shared city plan.

    Parameters
    ----------
    city:
        Shared city plan.
    seed:
        RNG seed; the whole dataset is a deterministic function of
        (city, seed, sizes).
    gps_noise_m:
        Standard deviation of the Gaussian GPS error applied to every
        pick-up/drop-off coordinate.
    speed_mps:
        Effective door-to-door speed (includes congestion); with the
        default 12 km city this yields ~10-35 minute journeys.
    card_fraction:
        Fraction of passengers that are card-linked (paper: 20%).
    zipf_s:
        Exponent of the Zipf law over venue anchors; higher values
        concentrate trips on fewer hot spots.  At laptop scale this is
        the lever that restores the per-location trip density a 2.2e7
        journey corpus has (see the anchor-table docstring).
    """

    def __init__(
        self,
        city: CityModel,
        seed: int = 23,
        gps_noise_m: float = 15.0,
        speed_mps: float = 4.5,
        card_fraction: float = 0.2,
        zipf_s: float = 1.5,
        venue_spread_m: float = 14.0,
    ) -> None:
        if not 0.0 < card_fraction <= 1.0:
            raise ValueError("card_fraction must be in (0, 1]")
        if speed_mps <= 0 or gps_noise_m < 0:
            raise ValueError("speed must be positive, noise non-negative")
        if zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        self.city = city
        self.seed = seed
        self.gps_noise_m = gps_noise_m
        self.speed_mps = speed_mps
        self.card_fraction = card_fraction
        self.zipf_s = zipf_s
        self.venue_spread_m = venue_spread_m
        self._anchor_tables: Dict[
            str, Tuple[List[MetersXY], Float64Array, Float64Array]
        ] = {}

    # -- anchor helpers ----------------------------------------------------

    def _anchor_table(
        self, category: str
    ) -> Tuple[List[MetersXY], Float64Array, Float64Array]:
        """All plazas of a category with Zipf weights and venue spreads.

        Real venue popularity is heavy-tailed: a few malls/office towers
        attract a large share of trips.  Without this skew a small
        simulated population spreads so thin that no location reaches
        the paper's support thresholds — the Zipf law restores the
        density a 2.2e7-trip corpus has naturally.  Spread scales with
        popularity: a flagship mall or an airport kerb covers hundreds
        of metres while a corner shop covers ten — the heterogeneity a
        fixed clustering radius cannot fit but OPTICS can.
        """
        cached = self._anchor_tables.get(category)
        if cached is not None:
            return cached
        blocks = self.city.blocks_of(category)
        if not blocks:
            raise ValueError(f"city has no block for category {category!r}")
        anchors: List[MetersXY] = []
        for block in blocks:
            for px, py in self.city.plazas(block):
                anchors.append((float(px), float(py)))
        rank_rng = np.random.default_rng(
            self.seed * 7_919 + zlib.crc32(category.encode())
        )
        ranks = rank_rng.permutation(len(anchors))
        weights = 1.0 / (ranks + 1.0) ** self.zipf_s
        weights /= weights.sum()
        spreads = self.venue_spread_m * (
            0.6 + 3.4 * np.sqrt(weights / weights.max())
        )
        self._anchor_tables[category] = (anchors, weights, spreads)
        return anchors, weights, spreads

    def _anchor(
        self, category: str, rng: np.random.Generator
    ) -> MetersXY:
        """A venue near a plaza zoned for ``category`` (metres).

        Drawn Zipf-weighted over plazas, then jittered by the venue's
        own spread: passengers stop at a specific door of the venue, so
        the stay-point cloud covers the venue footprint.
        """
        anchors, weights, spreads = self._anchor_table(category)
        idx = int(rng.choice(len(anchors), p=weights))
        x, y = anchors[idx]
        jx, jy = rng.normal(0.0, spreads[idx], 2)
        return x + jx, y + jy

    def _venue_anchor(
        self, venue: str, rng: np.random.Generator
    ) -> MetersXY:
        block = self.city.venue_block(venue)
        plazas = self.city.plazas(block)
        px, py = plazas[int(rng.integers(len(plazas)))]
        return float(px), float(py)

    def _make_passenger(
        self, pid: int, rng: np.random.Generator
    ) -> Passenger:
        home = self._anchor("Residence", rng)
        work = self._anchor("Business & Office", rng)
        leisure = []
        for cat, _w in _EVENING_STOPS + _WEEKEND_STOPS:
            x, y = self._anchor(cat, rng)
            leisure.append((x, y, cat))
        return Passenger(
            pid, home, work, "Residence", "Business & Office", tuple(leisure)
        )

    # -- trip emission -------------------------------------------------------

    def _noisy_stay(
        self, x: float, y: float, t: float, rng: np.random.Generator
    ) -> StayPoint:
        nx = x + rng.normal(0.0, self.gps_noise_m)
        ny = y + rng.normal(0.0, self.gps_noise_m)
        lon, lat = self.city.projection.to_lonlat(nx, ny)
        return StayPoint(lon, lat, t)

    def _travel_time(
        self, src: MetersXY, dst: MetersXY,
        rng: np.random.Generator,
    ) -> float:
        dist = math.hypot(dst[0] - src[0], dst[1] - src[1])
        base = dist / self.speed_mps
        return base + rng.uniform(180.0, 600.0)

    def _emit_trip(
        self,
        trips: List[TaxiTrip],
        pid: Optional[int],
        src: MetersXY,
        dst: MetersXY,
        src_cat: str,
        dst_cat: str,
        depart_t: float,
        rng: np.random.Generator,
    ) -> float:
        """Append one journey; return the arrival timestamp."""
        arrive_t = depart_t + self._travel_time(src, dst, rng)
        trips.append(
            TaxiTrip(
                trip_id=len(trips),
                passenger_id=pid,
                pickup=self._noisy_stay(src[0], src[1], depart_t, rng),
                dropoff=self._noisy_stay(dst[0], dst[1], arrive_t, rng),
                pickup_truth=src_cat,
                dropoff_truth=dst_cat,
            )
        )
        return arrive_t

    def _pick_stop(
        self,
        passenger: Passenger,
        mix: Sequence[Tuple[str, float]],
        rng: np.random.Generator,
    ) -> Tuple[float, float, str]:
        names = [c for c, _w in mix]
        weights = np.array([w for _c, w in mix], dtype=float)
        weights /= weights.sum()
        category = str(rng.choice(names, p=weights))
        matches = [lz for lz in passenger.leisure if lz[2] == category]
        if matches:
            return matches[int(rng.integers(len(matches)))]
        x, y = self._anchor(category, rng)
        return (x, y, category)

    def _simulate_weekday(
        self,
        trips: List[TaxiTrip],
        passenger: Passenger,
        day_start: float,
        rng: np.random.Generator,
    ) -> None:
        pid = passenger.passenger_id
        home, work = passenger.home, passenger.work
        hcat, wcat = passenger.home_category, passenger.work_category

        roll = rng.random()
        if roll < 0.02:
            # Airport day: home -> airport in the morning (Fig 14g).
            airport = self._venue_anchor("airport", rng)
            depart = day_start + rng.normal(7.0, 1.0) * 3600.0
            self._emit_trip(
                trips, pid, home, airport, hcat, "Traffic Stations",
                depart, rng,
            )
            return
        if roll < 0.04:
            # Hospital day: home -> children's hospital -> home (Fig 14h).
            hospital = self._venue_anchor("childrens_hospital", rng)
            depart = day_start + rng.normal(8.5, 0.8) * 3600.0
            arrive = self._emit_trip(
                trips, pid, home, hospital, hcat, "Medical Service",
                depart, rng,
            )
            back = arrive + rng.uniform(0.5, 1.0) * 3600.0
            self._emit_trip(
                trips, pid, hospital, home, "Medical Service", hcat,
                back, rng,
            )
            return

        # Morning commute.
        depart = day_start + rng.normal(7.75, 0.6) * 3600.0
        self._emit_trip(trips, pid, home, work, hcat, wcat, depart, rng)

        # Evening: straight home or a chained stop (Office -> X -> Home).
        evening = day_start + rng.normal(18.2, 0.8) * 3600.0
        if rng.random() < 0.55:
            self._emit_trip(trips, pid, work, home, wcat, hcat, evening, rng)
        else:
            sx, sy, scat = self._pick_stop(passenger, _EVENING_STOPS, rng)
            arrive = self._emit_trip(
                trips, pid, work, (sx, sy), wcat, scat, evening, rng
            )
            onward = arrive + rng.uniform(0.25, 0.75) * 3600.0
            self._emit_trip(
                trips, pid, (sx, sy), home, scat, hcat, onward, rng
            )

    def _simulate_weekend(
        self,
        trips: List[TaxiTrip],
        passenger: Passenger,
        day_start: float,
        rng: np.random.Generator,
    ) -> None:
        pid = passenger.passenger_id
        home = passenger.home
        hcat = passenger.home_category
        if rng.random() > 0.6:
            return  # stays home / uses other transport
        sx, sy, scat = self._pick_stop(passenger, _WEEKEND_STOPS, rng)
        depart = day_start + rng.uniform(9.5, 15.0) * 3600.0
        arrive = self._emit_trip(
            trips, pid, home, (sx, sy), hcat, scat, depart, rng
        )
        if rng.random() < 0.8:
            back = arrive + rng.uniform(1.0, 4.0) * 3600.0
            self._emit_trip(
                trips, pid, (sx, sy), home, scat, hcat, back, rng
            )

    def _simulate_anonymous(
        self, trips: List[TaxiTrip], day_start: float, rng: np.random.Generator
    ) -> None:
        """One anonymous journey drawn from the aggregate OD process."""
        weekend = is_weekend(day_start)
        if weekend:
            hour = rng.uniform(9.0, 23.0)
            stops = _WEEKEND_STOPS
        else:
            # Bimodal rush hours.
            hour = rng.normal(8.0, 1.0) if rng.random() < 0.5 else rng.normal(18.5, 1.5)
            stops = _EVENING_STOPS
        hour = float(np.clip(hour, 0.0, 23.8))
        depart = day_start + hour * 3600.0

        r = rng.random()
        if r < 0.10:
            src = self._anchor("Residence", rng)
            dst = self._venue_anchor("airport", rng)
            src_cat, dst_cat = "Residence", "Traffic Stations"
        elif r < 0.5 and not weekend:
            if hour < 12.0:
                src = self._anchor("Residence", rng)
                dst = self._anchor("Business & Office", rng)
                src_cat, dst_cat = "Residence", "Business & Office"
            else:
                src = self._anchor("Business & Office", rng)
                dst = self._anchor("Residence", rng)
                src_cat, dst_cat = "Business & Office", "Residence"
        else:
            names = [c for c, _w in stops]
            weights = np.array([w for _c, w in stops], dtype=float)
            weights /= weights.sum()
            dst_cat = str(rng.choice(names, p=weights))
            src = self._anchor("Residence", rng)
            dst = self._anchor(dst_cat, rng)
            src_cat = "Residence"
        self._emit_trip(trips, None, src, dst, src_cat, dst_cat, depart, rng)

    # -- public API --------------------------------------------------------

    def simulate(
        self,
        n_passengers: int = 400,
        days: int = 7,
        anonymous_trips_per_day: int = 0,
    ) -> TaxiDataset:
        """Run the simulation.

        ``anonymous_trips_per_day`` defaults to four times the card-linked
        daily volume when 0, approximating the paper's 20/80 split.
        """
        if n_passengers <= 0 or days <= 0:
            raise ValueError("need at least one passenger and one day")
        rng = np.random.default_rng(self.seed)
        passengers = [self._make_passenger(i, rng) for i in range(n_passengers)]
        trips: List[TaxiTrip] = []
        if anonymous_trips_per_day == 0:
            ratio = (1.0 - self.card_fraction) / self.card_fraction
            anonymous_trips_per_day = int(n_passengers * 2 * ratio)

        for day in range(days):
            day_start = day * SECONDS_PER_DAY
            weekend = is_weekend(day_start)
            for passenger in passengers:
                if weekend:
                    self._simulate_weekend(trips, passenger, day_start, rng)
                else:
                    self._simulate_weekday(trips, passenger, day_start, rng)
            for _ in range(anonymous_trips_per_day):
                self._simulate_anonymous(trips, day_start, rng)

        return TaxiDataset(self.city, trips, passengers, days)
