"""Persistence for the City Semantic Diagram.

Construction cost grows with POIs x stay points, while the diagram
itself is small; a downstream deployment builds the CSD offline and
serves recognition from the loaded artifact.  The format is a single
JSON document (stdlib only) carrying the POIs, per-POI popularity, unit
membership, and the projection anchor — everything
:class:`~repro.core.csd.CitySemanticDiagram` needs to reconstruct
itself exactly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.contracts import ArraySpec, array_contract
from repro.ioutil import strict_json_dump, strict_json_load
from repro.core.csd import CitySemanticDiagram, SemanticUnit
from repro.data.poi import POI
from repro.geo.projection import LocalProjection

PathLike = Union[str, Path]

#: Format marker so later revisions can migrate old artifacts.
FORMAT_VERSION = 1


@array_contract(csd=ArraySpec(dtype="int64", ndim=1, attr="unit_of"))
def save_csd(path: PathLike, csd: CitySemanticDiagram) -> None:
    """Serialise a diagram to JSON, atomically.

    Non-finite values are rejected before anything is written: a
    NaN/inf popularity would otherwise be emitted as the non-standard
    JSON tokens ``NaN``/``Infinity`` (Python's default
    ``allow_nan=True``), which other parsers reject.  Raises
    ``ValueError`` naming the first offending POI index.

    The document is written via :func:`repro.ioutil.strict_json_dump`
    (serialise in memory → ``*.tmp`` sibling → :func:`os.replace`), so
    a crash at any point leaves either the previous artifact or the new
    one — never a truncated ``csd.json``.  That matters beyond the
    runner (whose :class:`~repro.runner.fs.FileSystem` wraps
    checkpoints in its own tmp+replace): ``repro serve`` loads whatever
    path it is handed, including artifacts written by a bare
    ``save_csd`` call from ``repro build-csd --save``.
    """
    popularity = np.asarray(csd.popularity, dtype=float)
    bad = np.flatnonzero(~np.isfinite(popularity))
    if len(bad):
        index = int(bad[0])
        raise ValueError(
            f"popularity of POI index {index} is non-finite "
            f"({popularity[index]!r}); a CSD with NaN/inf popularity "
            "cannot be serialised to standard JSON"
        )
    document = {
        "format_version": FORMAT_VERSION,
        "tag_level": csd.tag_level,
        "projection": {
            "origin_lon": csd.projection.origin_lon,
            "origin_lat": csd.projection.origin_lat,
        },
        "pois": [
            [p.poi_id, p.lon, p.lat, p.major, p.minor, p.name]
            for p in csd.pois
        ],
        "popularity": csd.popularity.tolist(),
        "unit_of": csd.unit_of.tolist(),
        "units": [
            {
                "unit_id": u.unit_id,
                "poi_indices": u.poi_indices,
                "centroid_xy": list(u.centroid_xy),
                "semantic_distribution": u.semantic_distribution,
            }
            for u in csd.units
        ],
    }
    # strict_json_dump's allow_nan=False backstops the popularity check
    # above for any other float field (centroids, distributions):
    # strict JSON or no file at all.  sort_keys=False preserves the
    # documented field order of existing artifacts.
    strict_json_dump(path, document, sort_keys=False)


@array_contract(
    ret=[
        ArraySpec(dtype="int64", ndim=1, attr="unit_of"),
        ArraySpec(dtype="float64", ndim=1, finite=True, attr="popularity"),
    ]
)
def load_csd(path: PathLike) -> CitySemanticDiagram:
    """Reconstruct a diagram saved by :func:`save_csd`.

    Raises :class:`repro.ioutil.TornArtifactError` (naming the file) if
    the artifact is truncated or invalid JSON, and ``ValueError`` on
    unknown format versions or structurally inconsistent documents.
    """
    document = strict_json_load(path)
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported CSD format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    projection = LocalProjection(
        document["projection"]["origin_lon"],
        document["projection"]["origin_lat"],
    )
    pois = [
        POI(int(pid), float(lon), float(lat), major, minor, name)
        for pid, lon, lat, major, minor, name in document["pois"]
    ]
    poi_xy = projection.to_meters_array([(p.lon, p.lat) for p in pois])
    units = [
        SemanticUnit(
            unit_id=int(u["unit_id"]),
            poi_indices=[int(i) for i in u["poi_indices"]],
            centroid_xy=(
                float(u["centroid_xy"][0]), float(u["centroid_xy"][1])
            ),
            semantic_distribution={
                str(tag): float(w)
                for tag, w in u["semantic_distribution"].items()
            },
        )
        for u in document["units"]
    ]
    csd = CitySemanticDiagram(
        pois=pois,
        projection=projection,
        poi_xy=poi_xy,
        popularity=np.asarray(document["popularity"], dtype=float),
        units=units,
        # np.int64 explicitly: dtype=int is platform-dependent (int32
        # on Windows) and would break the repo-wide int64 index/label
        # contract (docs/STATIC_ANALYSIS.md).
        unit_of=np.asarray(document["unit_of"], dtype=np.int64),
        tag_level=document.get("tag_level", "major"),
    )
    _check_consistency(csd)
    return csd


def _check_consistency(csd: CitySemanticDiagram) -> None:
    """Fail loudly on corrupt artifacts instead of mis-recognising."""
    if csd.unit_of.dtype != np.int64:
        raise ValueError(
            f"unit_of must be int64 (the repo-wide index/label "
            f"contract), got {csd.unit_of.dtype}"
        )
    for unit in csd.units:
        for i in unit.poi_indices:
            if not 0 <= i < csd.n_pois:
                raise ValueError(
                    f"unit {unit.unit_id} references POI index {i} "
                    f"outside the dataset"
                )
            if csd.unit_of[i] != unit.unit_id:
                raise ValueError(
                    f"unit_of[{i}] disagrees with unit {unit.unit_id}'s "
                    "membership list"
                )
