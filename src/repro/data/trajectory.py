"""Trajectory data model: GPS points, trajectories, stay points (Def. 1, 5, 6).

Semantic properties are ``frozenset`` of category names so they hash,
compare, and support the set containment of Definition 7 condition iii.
Timestamps are POSIX seconds (float) throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

SemanticProperty = FrozenSet[str]

#: The empty semantic property, used before recognition runs.
NO_SEMANTICS: SemanticProperty = frozenset()


@dataclass(frozen=True)
class GPSPoint:
    """One raw GPS fix ``(p, t)`` of Definition 1."""

    lon: float
    lat: float
    t: float

    def lonlat(self) -> Tuple[float, float]:
        return (self.lon, self.lat)


@dataclass(frozen=True)
class StayPoint:
    """A stay point ``sp = (x, y, t, s)`` (Definition 5).

    In the taxi experiments the pick-up and drop-off points are used as
    stay points directly; ``detect_stay_points`` derives them from dense
    trajectories instead.
    """

    lon: float
    lat: float
    t: float
    semantics: SemanticProperty = NO_SEMANTICS

    def lonlat(self) -> Tuple[float, float]:
        return (self.lon, self.lat)

    def with_semantics(self, semantics: SemanticProperty) -> "StayPoint":
        """Copy of this stay point carrying recognised semantics."""
        return replace(self, semantics=frozenset(semantics))


@dataclass
class Trajectory:
    """A raw GPS trajectory ``T`` (Definition 1)."""

    traj_id: int
    points: List[GPSPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[GPSPoint]:
        return iter(self.points)

    def duration(self) -> float:
        """Seconds between the first and last fix; 0 for short tracks."""
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].t - self.points[0].t

    def is_time_ordered(self) -> bool:
        """True when timestamps never decrease along the trajectory."""
        pts = self.points
        return all(pts[i].t <= pts[i + 1].t for i in range(len(pts) - 1))


@dataclass
class SemanticTrajectory:
    """A semantic trajectory ``ST`` (Definition 6): stay points in time order.

    ``traj_id`` links back to the raw trajectory (or card-linked
    passenger) it was derived from.
    """

    traj_id: int
    stay_points: List[StayPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.stay_points)

    def __iter__(self) -> Iterator[StayPoint]:
        return iter(self.stay_points)

    def __getitem__(self, k: int) -> StayPoint:
        return self.stay_points[k]

    def point(self, k: int) -> StayPoint:
        """``Pt^k(ST)`` with 1-based ``k`` as written in the paper."""
        if not 1 <= k <= len(self.stay_points):
            raise IndexError(f"Pt^{k} out of range for length {len(self)}")
        return self.stay_points[k - 1]

    def semantic_sequence(self) -> Tuple[SemanticProperty, ...]:
        """The sequence of semantic properties along the trajectory."""
        return tuple(sp.semantics for sp in self.stay_points)

    def is_time_ordered(self) -> bool:
        sps = self.stay_points
        return all(sps[i].t <= sps[i + 1].t for i in range(len(sps) - 1))


def dominant_tag(semantics: SemanticProperty) -> Optional[str]:
    """Canonical single tag for a semantic property.

    Semantic properties are unordered sets; PrefixSpan needs one hashable
    item per stay point, so we take the lexicographically smallest tag.
    Returns ``None`` for the empty property.
    """
    if not semantics:
        return None
    return min(semantics)


def as_tag_sequence(st: SemanticTrajectory) -> List[Optional[str]]:
    """Dominant-tag sequence of a semantic trajectory (PrefixSpan input)."""
    return [dominant_tag(sp.semantics) for sp in st.stay_points]


def validate_database(database: Sequence[SemanticTrajectory]) -> None:
    """Raise ``ValueError`` on malformed semantic trajectories.

    Checks time ordering and coordinate sanity; used by the public
    mining entry points to fail fast on corrupt input.
    """
    for st in database:
        if not st.is_time_ordered():
            raise ValueError(f"trajectory {st.traj_id} is not time ordered")
        for sp in st.stay_points:
            if not (-180.0 <= sp.lon <= 180.0 and -90.0 <= sp.lat <= 90.0):
                raise ValueError(
                    f"trajectory {st.traj_id} has out-of-range coordinate "
                    f"({sp.lon}, {sp.lat})"
                )
