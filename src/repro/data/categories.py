"""POI category taxonomy mirroring the paper's AMAP snapshot (Table 3).

The paper's POI dataset classifies 1.2e6 Shanghai POIs into 15 major and
98 minor semantic types.  Table 3 gives the major-category counts; the
minor split is not published, so we distribute each major category over
a plausible set of minors (98 in total) and treat them as uniform within
their major unless stated otherwise.  Semantic properties throughout the
pipeline are the *major* category names — the same granularity at which
the paper reports patterns such as Residence -> Office.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Major category -> (paper count, paper percentage), verbatim Table 3.
CATEGORY_TABLE: Dict[str, Tuple[int, float]] = {
    "Residence": (218_327, 18.09),
    "Shop & Market": (197_411, 16.36),
    "Business & Office": (180_962, 15.00),
    "Restaurant": (136_322, 11.30),
    "Entertainment": (120_986, 10.03),
    "Public Service": (113_446, 9.40),
    "Traffic Stations": (91_079, 7.55),
    "Technology & Education": (32_190, 2.67),
    "Sports": (23_418, 1.94),
    "Government Agency": (22_670, 1.88),
    "Industry": (17_732, 1.47),
    "Financial Service": (17_251, 1.43),
    "Medical Service": (15_894, 1.32),
    "Accommodation & Hotel": (12_795, 1.06),
    "Tourism": (6_166, 0.51),
}

#: The 15 major categories in Table 3 order (descending count).
MAJOR_CATEGORIES: List[str] = list(CATEGORY_TABLE)

#: 98 minor categories grouped under their major category.  Names follow
#: AMAP's public taxonomy where a natural mapping exists.
MINOR_CATEGORIES: Dict[str, List[str]] = {
    "Residence": [
        "Residential Quarter", "Villa Compound", "Dormitory",
        "Serviced Apartment", "Community Centre", 
        "Public Housing Estate",
    ],
    "Shop & Market": [
        "Shopping Mall", "Supermarket", "Convenience Store",
        "Clothing Store", "Electronics Store", "Furniture Store",
        "Bookstore", "Wet Market", "Specialty Store", 
    ],
    "Business & Office": [
        "Office Building", "Company", "Industrial Park Office",
        "Co-working Space", "Conference Centre", "Business Incubator",
        "Media House", 
    ],
    "Restaurant": [
        "Chinese Restaurant", "Western Restaurant", "Japanese Restaurant",
        "Fast Food", "Noodle House", "Hotpot", "Cafe", "Bakery",
        "Dessert Shop", 
    ],
    "Entertainment": [
        "Cinema", "KTV", "Bar", "Night Club", "Game Arcade",
        "Internet Cafe", "Theatre", 
    ],
    "Public Service": [
        "Post Office", "Police Station", "Fire Station",
        "Community Service", "Public Toilet", "Public Library",
        "Civil Affairs Office",
    ],
    "Traffic Stations": [
        "Metro Station", "Bus Station", "Railway Station", "Airport",
        "Coach Terminal", "Ferry Terminal", "Taxi Stand", "Parking Lot",
    ],
    "Technology & Education": [
        "University", "High School", "Primary School", "Kindergarten",
        "Research Institute", "Training Centre", "Science Museum",
    ],
    "Sports": [
        "Gym", "Stadium", "Swimming Pool", "Tennis Court",
        "Football Pitch", "Badminton Hall",
    ],
    "Government Agency": [
        "District Government", "Tax Bureau", "Customs Office",
        "Administrative Centre", "Court", "Embassy",
    ],
    "Industry": [
        "Factory", "Industrial Park", "Warehouse", "Logistics Centre",
        "Shipyard",
    ],
    "Financial Service": [
        "Bank", "ATM", "Insurance Company", "Securities Firm",
        "Exchange Office",
    ],
    "Medical Service": [
        "General Hospital", "Children's Hospital", "Clinic", "Pharmacy",
        "Dental Clinic", "Health Centre",
    ],
    "Accommodation & Hotel": [
        "Five-Star Hotel", "Business Hotel", "Budget Hotel", "Hostel",
        "Guesthouse",
    ],
    "Tourism": [
        "Scenic Spot", "Museum", "Temple", "Historic Site", "City Park",
        
    ],
}


def _validate_taxonomy() -> None:
    total_minor = sum(len(v) for v in MINOR_CATEGORIES.values())
    if total_minor != 98:
        raise AssertionError(
            f"taxonomy must contain 98 minor categories, found {total_minor}"
        )
    if set(MINOR_CATEGORIES) != set(MAJOR_CATEGORIES):
        raise AssertionError("minor taxonomy keys must equal the 15 majors")


_validate_taxonomy()

#: Reverse map minor -> major, e.g. "Noodle House" -> "Restaurant".
_MINOR_TO_MAJOR: Dict[str, str] = {
    minor: major
    for major, minors in MINOR_CATEGORIES.items()
    for minor in minors
}


def major_of_minor(minor: str) -> str:
    """Major category of a minor category name.

    Raises ``KeyError`` for unknown minors so typos fail loudly.
    """
    return _MINOR_TO_MAJOR[minor]


def category_distribution() -> Dict[str, float]:
    """Major-category probabilities normalised from Table 3 counts."""
    total = sum(count for count, _pct in CATEGORY_TABLE.values())
    return {name: count / total for name, (count, _pct) in CATEGORY_TABLE.items()}
