"""GeoJSON export of CSD units and mined patterns.

Figure 6 (the CSD map) and Figure 14 (pattern maps) are rendered from
exactly this data in the paper; exporting standard GeoJSON lets a
downstream user drop the output into any map viewer (kepler.gl, QGIS,
geojson.io).  Only the stdlib ``json`` module is used.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.core.csd import CitySemanticDiagram
from repro.core.extraction import FineGrainedPattern
from repro.core.patterns import pattern_time_bucket, route_label
from repro.ioutil import strict_json_dump, strict_json_load
from repro.types import Float64Array, LonLatArray

PathLike = Union[str, Path]


def _convex_hull(xy: LonLatArray) -> LonLatArray:
    """Andrew's monotone chain convex hull of an ``(n, 2)`` array."""
    pts = np.unique(np.asarray(xy, dtype=float), axis=0)
    if len(pts) <= 2:
        return pts
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]

    def cross(o: Float64Array, a: Float64Array, b: Float64Array) -> float:
        return float(
            (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
        )

    lower: List[Float64Array] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[Float64Array] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return np.asarray(lower[:-1] + upper[:-1], dtype=np.float64)


def csd_to_geojson(csd: CitySemanticDiagram, min_unit_size: int = 3) -> dict:
    """FeatureCollection of unit hull polygons (the Figure 6 view).

    Units smaller than ``min_unit_size`` export as points.
    """
    features = []
    for unit in csd.units:
        lonlat = np.array(
            [[csd.pois[i].lon, csd.pois[i].lat] for i in unit.poi_indices],
            dtype=np.float64,
        )
        properties = {
            "unit_id": unit.unit_id,
            "size": len(unit),
            "dominant_tag": unit.dominant_tag(),
            "tags": sorted(unit.tags),
        }
        if len(unit) >= min_unit_size:
            hull = _convex_hull(lonlat)
            if len(hull) >= 3:
                ring = hull.tolist() + [hull[0].tolist()]
                geometry = {"type": "Polygon", "coordinates": [ring]}
            else:
                geometry = {
                    "type": "Point",
                    "coordinates": lonlat.mean(axis=0).tolist(),
                }
        else:
            geometry = {
                "type": "Point",
                "coordinates": lonlat.mean(axis=0).tolist(),
            }
        features.append(
            {"type": "Feature", "geometry": geometry, "properties": properties}
        )
    return {"type": "FeatureCollection", "features": features}


def patterns_to_geojson(
    patterns: Sequence[FineGrainedPattern],
) -> dict:
    """FeatureCollection of pattern LineStrings (the Figure 14 view)."""
    features = []
    for idx, p in enumerate(patterns):
        coords = [[sp.lon, sp.lat] for sp in p.representatives]
        geometry = (
            {"type": "LineString", "coordinates": coords}
            if len(coords) >= 2
            else {"type": "Point", "coordinates": coords[0]}
        )
        features.append(
            {
                "type": "Feature",
                "geometry": geometry,
                "properties": {
                    "pattern_id": idx,
                    "route": route_label(p),
                    "support": p.support,
                    "length": len(p),
                    "bucket": pattern_time_bucket(p),
                },
            }
        )
    return {"type": "FeatureCollection", "features": features}


def write_geojson(path: PathLike, collection: dict) -> None:
    """Write a FeatureCollection with stable key order, atomically.

    Strict JSON (``allow_nan=False``): a non-finite coordinate raises
    instead of emitting tokens map viewers reject.
    """
    if collection.get("type") != "FeatureCollection":
        raise ValueError("expected a GeoJSON FeatureCollection")
    strict_json_dump(path, collection, indent=2)


def read_geojson(path: PathLike) -> dict:
    """Read back a FeatureCollection written by :func:`write_geojson`.

    Raises :class:`repro.ioutil.TornArtifactError` naming the file on
    truncated or invalid JSON.
    """
    collection = strict_json_load(path)
    if not isinstance(collection, dict) or (
        collection.get("type") != "FeatureCollection"
    ):
        raise ValueError(f"{path} is not a GeoJSON FeatureCollection")
    return collection
