"""POI model and generator (stand-in for the paper's AMAP snapshot).

Definition 2: a POI is ``{id, p, s}`` — identity, location, semantic
property.  The generator samples major categories with Table 3
proportions and places POIs with two spatial regimes:

- *plaza clusters*: each city block contains a few dense same-category
  clusters (sigma ~ 12 m), so Algorithm 1 finds groups of at least
  ``MinPts_p`` POIs within ``eps_p = 30 m``;
- *skyscraper stacks*: mixed-category POIs within an 8 m footprint,
  exercising the ``d_v`` branch of Algorithm 1 and the purification step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.categories import (
    MAJOR_CATEGORIES,
    MINOR_CATEGORIES,
    category_distribution,
)
from repro.data.city import CityBlock, CityModel
from repro.data.trajectory import SemanticProperty
from repro.types import LonLat, LonLatArray


@dataclass(frozen=True)
class POI:
    """Point of Interest ``p^I = {id, p, s}`` (Definition 2)."""

    poi_id: int
    lon: float
    lat: float
    major: str
    minor: str
    name: str = ""

    @property
    def semantics(self) -> SemanticProperty:
        """Semantic property: the major category as a one-tag set."""
        return frozenset((self.major,))

    def lonlat(self) -> LonLat:
        return (self.lon, self.lat)


def poi_lonlat_array(pois: Sequence[POI]) -> LonLatArray:
    """``(n, 2)`` lon/lat array for a POI sequence."""
    return np.array([[p.lon, p.lat] for p in pois], dtype=float).reshape(-1, 2)


class POIGenerator:
    """Synthesises a POI dataset over a :class:`CityModel`.

    Parameters
    ----------
    city:
        The shared city plan (placement geometry).
    seed:
        Seed for the private RNG; same seed + same city => same POIs.
    plaza_sigma_m:
        Gaussian spread of a plaza cluster, metres.
    stray_fraction:
        Probability that a POI ignores plazas and lands uniformly in its
        block (the "left-over" POIs of Figure 3 that Algorithm 1 cannot
        cluster and the merging step later sweeps up).
    mixing_fraction:
        Probability that a POI lands in a block of a *different* zone —
        the restaurant inside a residential quarter, the shop on an
        office street.  This is the semantic-complexity knob: without it
        every block is category-pure and neither purification nor the
        ROI baseline's weakness have anything to act on.
    """

    def __init__(
        self,
        city: CityModel,
        seed: int = 11,
        plaza_sigma_m: float = 12.0,
        stray_fraction: float = 0.12,
        mixing_fraction: float = 0.2,
    ) -> None:
        if not 0.0 <= stray_fraction <= 1.0:
            raise ValueError("stray_fraction must be a probability")
        if not 0.0 <= mixing_fraction <= 1.0:
            raise ValueError("mixing_fraction must be a probability")
        self.city = city
        self.seed = seed
        self.plaza_sigma_m = plaza_sigma_m
        self.stray_fraction = stray_fraction
        self.mixing_fraction = mixing_fraction

    # -- internals -------------------------------------------------------

    def _sample_in_block(
        self, block: CityBlock, rng: np.random.Generator
    ) -> Tuple[float, float]:
        if rng.random() < self.stray_fraction:
            return block.sample_point(rng)
        plazas = self.city.plazas(block)
        px, py = plazas[int(rng.integers(len(plazas)))]
        x = px + rng.normal(0.0, self.plaza_sigma_m)
        y = py + rng.normal(0.0, self.plaza_sigma_m)
        half = block.half
        x = float(np.clip(x, block.cx - half, block.cx + half))
        y = float(np.clip(y, block.cy - half, block.cy + half))
        return x, y

    def _minor_for(self, major: str, rng: np.random.Generator) -> str:
        minors = MINOR_CATEGORIES[major]
        return minors[int(rng.integers(len(minors)))]

    # -- public API --------------------------------------------------------

    def generate(
        self,
        n_pois: int,
        skyscraper_pois_each: int = 12,
        category_mix: Optional[Dict[str, float]] = None,
    ) -> List[POI]:
        """Generate ``n_pois`` POIs (plus skyscraper stacks).

        ``category_mix`` overrides the Table 3 distribution; it must map
        major categories to non-negative weights.
        """
        if n_pois < 0:
            raise ValueError("n_pois must be non-negative")
        rng = np.random.default_rng(self.seed)
        mix = category_mix or category_distribution()
        unknown = set(mix) - set(MAJOR_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown categories in mix: {sorted(unknown)}")
        names = list(mix)
        weights = np.array([mix[n] for n in names], dtype=float)
        if weights.sum() <= 0:
            raise ValueError("category mix must have positive total weight")
        weights /= weights.sum()

        pois: List[POI] = []
        poi_id = 0
        # Skyscraper stacks first: mixed categories, near-identical spots.
        for tower in self.city.skyscrapers:
            for j in range(skyscraper_pois_each):
                major = tower.categories[j % len(tower.categories)]
                dx, dy = rng.normal(0.0, tower.footprint_radius / 2.0, 2)
                lon, lat = self.city.projection.to_lonlat(
                    tower.x + dx, tower.y + dy
                )
                pois.append(
                    POI(
                        poi_id,
                        lon,
                        lat,
                        major,
                        self._minor_for(major, rng),
                        name=f"tower{tower.tower_id}-{j}",
                    )
                )
                poi_id += 1

        # Zoned POIs with Table 3 category proportions.
        majors = rng.choice(names, size=n_pois, p=weights)
        for major in majors:
            major = str(major)
            blocks = self.city.blocks_of(major)
            if rng.random() < self.mixing_fraction or not blocks:
                block = self.city.blocks[int(rng.integers(len(self.city.blocks)))]
            else:
                block = blocks[int(rng.integers(len(blocks)))]
            x, y = self._sample_in_block(block, rng)
            lon, lat = self.city.projection.to_lonlat(x, y)
            pois.append(
                POI(
                    poi_id,
                    lon,
                    lat,
                    major,
                    self._minor_for(major, rng),
                    name=f"poi{poi_id}",
                )
            )
            poi_id += 1
        return pois
