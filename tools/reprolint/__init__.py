"""reprolint — domain-invariant static analysis for the repro codebase.

A deliberately small, stdlib-only (``ast``) linter that machine-checks
the invariants the CSR kernel rewrite (PR 1) rests on and that generic
linters cannot know about:

========  ==============================================================
RPL001    No raw lon/lat arithmetic or haversine math outside
          ``repro.geo`` — distance and projection must route through
          ``repro.geo.distance`` / ``repro.geo.projection``.
RPL002    No Python ``for``-statement iteration (other than ``range``
          chunking) in the hot kernel modules — vectorise, or mark a
          reference oracle with ``# reprolint: allow-loop``.
RPL003    No iteration over ``set`` expressions or ``dict.values()``
          feeding order-sensitive float accumulation in ``repro.core``
          — determinism of the scalar/batched equivalence depends on
          accumulation order (``math.fsum`` and ``sorted(...)`` are
          exempt because they are order-independent).
RPL004    No legacy ``np.random.*`` API — randomness must flow through
          an explicit ``np.random.default_rng(seed)`` generator.
RPL005    No mutable default arguments.
RPL006    No direct ``time.time()``/``time.perf_counter()`` timing in
          ``src/repro/`` outside ``repro.obs`` — all timing routes
          through the observability layer's ``Timer``/``Span`` so it
          lands in the metrics snapshot.
========  ==============================================================

Suppression: put ``# reprolint: allow-<name>`` on the flagged line or
the line directly above it (``allow-lonlat``, ``allow-loop``,
``allow-unordered``, ``allow-legacy-random``, ``allow-mutable-default``,
``allow-direct-timing``).

Run ``python -m tools.reprolint src/`` from the repository root; see
``docs/STATIC_ANALYSIS.md`` for the full rationale of each rule.
"""

from tools.reprolint.rules import (
    ALL_RULES,
    Finding,
    check_file,
    check_paths,
    check_source,
    iter_python_files,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "check_file",
    "check_paths",
    "check_source",
    "iter_python_files",
]
