"""reprolint — domain-invariant static analysis for the repro codebase.

A deliberately small, stdlib-only (``ast``) linter that machine-checks
the invariants the CSR kernel rewrite (PR 1) rests on and that generic
linters cannot know about.  It runs in four passes: pass 1 checks
each file in isolation, pass 2 (:mod:`tools.reprolint.crossmod`)
builds a repo-wide symbol table over ``src/repro`` and checks
contracts between modules, pass 3
(:mod:`tools.reprolint.concurrency`) builds a worker-reachability call
graph over that symbol table and checks fork/pickle/shared-memory
safety, and pass 4 (:mod:`tools.reprolint.durability`) checks the
artifact-durability contract — every artifact write in ``src/repro``
routes through the atomic I/O layer :mod:`repro.ioutil`.

Pass 1 (per file):

========  ==============================================================
RPL001    No raw lon/lat arithmetic or haversine math outside
          ``repro.geo`` — distance and projection must route through
          ``repro.geo.distance`` / ``repro.geo.projection``.
RPL002    No Python ``for``-statement iteration (other than ``range``
          chunking) in the hot kernel modules — vectorise, or mark a
          reference oracle with ``# reprolint: allow-loop``.
RPL003    No iteration over ``set`` expressions or ``dict.values()``
          feeding order-sensitive float accumulation in ``repro.core``
          — determinism of the scalar/batched equivalence depends on
          accumulation order (``math.fsum`` and ``sorted(...)`` are
          exempt because they are order-independent).
RPL004    No legacy ``np.random.*`` API — randomness must flow through
          an explicit ``np.random.default_rng(seed)`` generator.
RPL005    No mutable default arguments.
RPL006    No direct ``time.time()``/``time.perf_counter()`` timing in
          ``src/repro/`` outside ``repro.obs`` — all timing routes
          through the observability layer's ``Timer``/``Span`` so it
          lands in the metrics snapshot.
RPL007    Every array-constructing call (``np.zeros``/``empty``/
          ``full``/``arange``/``asarray``/``array`` and ``.astype``) in
          ``src/repro`` names an explicit platform-stable dtype —
          ``int``/``np.int_`` are int32 on Windows and break the
          repo-wide int64 CSR/label contract.
========  ==============================================================

Pass 2 (cross-module):

========  ==============================================================
RPL008    Obs metric/span names are string literals registered in the
          central ``repro.obs.names`` registry — no computed names, no
          ad-hoc dotted strings, no catalogue typos.
RPL009    Public array-typed functions in the contract-bearing modules
          carry an ``@array_contract`` declaration, and every declared
          contract agrees with the function's ``repro.types``
          annotations (``IndexArray`` ⇒ ``int64``, ``CSRQuery`` ⇒
          ``CSRSpec``, …).
RPL010    ``docs/OBSERVABILITY.md`` and ``repro.obs.names`` list the
          same names — the metric catalogue cannot silently rot.
RPL011    Worker pools are constructed only in ``repro.parallel`` —
          the sanctioned shared-memory fan-out layer.
========  ==============================================================

Pass 3 (concurrency safety, over the worker-reachability call graph
rooted at every callable dispatched across a process boundary):

========  ==============================================================
RPL012    Worker-dispatched callables are importable module-level
          functions — no lambdas, closures, or bound methods
          (fork+pickle hazard).
RPL013    No writes to arrays derived from ``attach_pack`` /
          ``attach_csd`` in worker-reachable code — attached
          shared-memory views are read-only by contract.
RPL014    ``shared_memory.SharedMemory`` construction and
          ``resource_tracker`` bookkeeping confined to
          ``repro/parallel/shm.py``; every ``create=True`` site there
          is structurally paired with an unlink path.
RPL015    No module-level mutable state mutated from worker-reachable
          code — ``fork`` snapshots globals, so parent and worker
          silently diverge (``shm.py``'s per-process attach cache is
          the sanctioned exception).
RPL016    No ``threading`` primitives or ``ThreadPoolExecutor`` in
          worker-reachable modules (threads + fork deadlock hazard).
========  ==============================================================

Pass 4 (artifact durability, per file in ``src/repro``):

========  ==============================================================
RPL017    No raw ``open(..., "w"/"wb")`` or ``Path.write_text``/
          ``write_bytes`` outside the sanctioned writers
          (``repro/ioutil.py``, ``repro/runner/fs.py``) — an in-place
          rewrite torn by a crash corrupts the artifact; route through
          ``repro.ioutil.atomic_write_*`` (append mode and the
          injectable ``fs`` handle are exempt).
RPL018    Every text-mode ``open()`` pins ``encoding=`` (platform
          default encoding varies), and csv-using modules also pin
          ``newline=""``.
RPL019    Every ``json.dump``/``json.dumps`` passes
          ``allow_nan=False`` — bare NaN/Infinity is invalid JSON that
          ``json.load`` accepts but external consumers reject; use
          ``repro.ioutil.strict_json_dump``.
RPL020    ``os.replace``/``os.rename``/``shutil.move``/``tempfile``
          confined to the sanctioned writers — ad-hoc tmp-and-rename
          dances belong in one audited place.
RPL021    No broad except-and-swallow (``except Exception: pass`` or
          ``contextlib.suppress(Exception)``) in the
          artifact-producing modules (runner, stream, serve,
          data/persistence, ioutil) — swallowing hides torn-write
          errors the durability layer is built to surface.
========  ==============================================================

Suppression: put ``# reprolint: allow-<name>`` on the flagged statement
(any of its lines; for block statements, the header) or in the comment
block directly above it — for decorated functions, above the first
decorator (``allow-lonlat``, ``allow-loop``, ``allow-unordered``,
``allow-legacy-random``, ``allow-mutable-default``,
``allow-direct-timing``, ``allow-dtype``, ``allow-metric-name``,
``allow-contract``, ``allow-pool``, ``allow-worker-callable``,
``allow-attached-write``, ``allow-shm``, ``allow-worker-global``,
``allow-thread``, ``allow-raw-open``, ``allow-open-encoding``,
``allow-lax-json``, ``allow-replace``, ``allow-swallow``).  RPL010
anchors in the markdown doc, which has no pragma channel — fix the
drift instead.

Run ``python -m tools.reprolint src/`` from the repository root; see
``docs/STATIC_ANALYSIS.md`` for the full rationale of each rule.
"""

from tools.reprolint.concurrency import check_concurrency
from tools.reprolint.durability import (
    DURABILITY_RULES,
    check_durability_file,
    check_durability_paths,
    check_durability_source,
)
from tools.reprolint.sarif import SARIF_TOOL_VERSION, SARIF_VERSION, to_sarif
from tools.reprolint.crossmod import (
    ALIAS_DTYPES,
    CONTRACT_MODULES,
    Project,
    build_project,
    check_project,
    load_project,
)
from tools.reprolint.rules import (
    ALL_RULES,
    RULE_SEVERITY,
    Finding,
    check_file,
    check_paths,
    check_source,
    is_suppressed,
    iter_python_files,
)

__all__ = [
    "ALIAS_DTYPES",
    "ALL_RULES",
    "CONTRACT_MODULES",
    "DURABILITY_RULES",
    "Finding",
    "Project",
    "RULE_SEVERITY",
    "SARIF_TOOL_VERSION",
    "SARIF_VERSION",
    "build_project",
    "check_concurrency",
    "check_durability_file",
    "check_durability_paths",
    "check_durability_source",
    "check_file",
    "check_paths",
    "check_project",
    "check_source",
    "is_suppressed",
    "iter_python_files",
    "load_project",
    "to_sarif",
]
