"""Command-line entry point: ``python -m tools.reprolint [paths...]``.

Runs both analysis passes: pass 1 lints each file in isolation, pass 2
builds a repo-wide symbol table over the ``repro`` package files in the
lint set and checks cross-module contracts (RPL008–RPL010), including
the ``docs/OBSERVABILITY.md`` drift gate when the doc is present.

Exit status: 0 when clean, 1 when findings exist, 2 on usage errors.
``--format json`` emits a machine-readable report (one JSON document,
``{"findings": [...], "count": N}``) for CI annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.reprolint.crossmod import check_project, load_project
from tools.reprolint.rules import ALL_RULES, check_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Domain-invariant static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to enable, e.g. RPL002,RPL003 "
        "(default: all rules)",
    )
    parser.add_argument(
        "--no-crossmod",
        action="store_true",
        help="skip pass 2 (cross-module rules RPL008-RPL010)",
    )
    parser.add_argument(
        "--obs-docs",
        metavar="PATH",
        default=None,
        help="observability doc checked by the RPL010 drift gate "
        "(default: docs/OBSERVABILITY.md when it exists)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, (pragma, description) in sorted(ALL_RULES.items()):
            print(f"{rule}  (# reprolint: {pragma})  {description}")
        return 0
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in select if r not in ALL_RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    findings = check_paths(args.paths, select=select)
    if not args.no_crossmod:
        project = load_project(args.paths)
        if project.modules:
            obs_doc = None
            doc_path = args.obs_docs
            if doc_path is None and Path("docs/OBSERVABILITY.md").is_file():
                doc_path = "docs/OBSERVABILITY.md"
            if doc_path is not None:
                try:
                    obs_doc = (doc_path, Path(doc_path).read_text(encoding="utf-8"))
                except OSError as exc:
                    print(f"cannot read --obs-docs {doc_path}: {exc}", file=sys.stderr)
                    return 2
            findings.extend(check_project(project, select=select, obs_doc=obs_doc))
    if args.format == "json":
        print(
            json.dumps(
                {"findings": [f.to_dict() for f in findings], "count": len(findings)},
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding)
        if findings:
            print(f"\n{len(findings)} finding(s)")
    return 1 if findings else 0
