"""Command-line entry point: ``python -m tools.reprolint [paths...]``.

Exit status: 0 when clean, 1 when findings exist, 2 on usage errors.
``--format json`` emits a machine-readable report (one JSON document,
``{"findings": [...], "count": N}``) for CI annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from tools.reprolint.rules import ALL_RULES, check_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Domain-invariant static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to enable, e.g. RPL002,RPL003 "
        "(default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, (pragma, description) in sorted(ALL_RULES.items()):
            print(f"{rule}  (# reprolint: {pragma})  {description}")
        return 0
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in select if r not in ALL_RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    findings = check_paths(args.paths, select=select)
    if args.format == "json":
        print(
            json.dumps(
                {"findings": [f.to_dict() for f in findings], "count": len(findings)},
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding)
        if findings:
            print(f"\n{len(findings)} finding(s)")
    return 1 if findings else 0
