"""Command-line entry point: ``python -m tools.reprolint [paths...]``.

Runs all four analysis passes: pass 1 lints each file in isolation,
pass 2 builds a repo-wide symbol table over the ``repro`` package files
in the lint set and checks cross-module contracts (RPL008–RPL010,
including the ``docs/OBSERVABILITY.md`` drift gate when the doc is
present), pass 3 builds a worker-reachability call graph over the
same symbol table and checks the concurrency-safety rules
(RPL012–RPL016), and pass 4 checks the artifact-durability rules
(RPL017–RPL021) per file.

Exit status (documented in ``docs/STATIC_ANALYSIS.md``):

* ``0`` — clean, or findings exist but all fall below the ``--fail-on``
  threshold,
* ``1`` — at least one finding at or above the threshold,
* ``2`` — usage error (unknown rule id, unreadable ``--obs-docs``).

``--format json`` emits one machine-readable document::

    {"schema": 2, "count": N, "fail_on": "error",
     "findings": [{"path": ..., "line": ..., "col": ...,
                   "rule": ..., "severity": ..., "message": ...}]}

Schema history: version 1 (unversioned, PR 5) was
``{"findings": [...], "count": N}`` with no ``severity`` field;
version 2 adds the ``schema``/``fail_on`` keys and per-finding
``severity``.  Consumers should reject documents whose ``schema`` they
do not know.

``--format sarif`` emits a SARIF 2.1.0 document instead (the schema
GitHub code scanning ingests; see :mod:`tools.reprolint.sarif`), with
the same exit-code contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.reprolint.concurrency import check_concurrency
from tools.reprolint.crossmod import check_project, load_project
from tools.reprolint.durability import check_durability_paths
from tools.reprolint.rules import ALL_RULES, RULE_SEVERITY, check_paths
from tools.reprolint.sarif import to_sarif

#: JSON output schema version.  Bump on any structural change.
JSON_SCHEMA_VERSION = 2

#: Severity ladder for --fail-on threshold comparison.
_SEVERITY_RANK = {"warning": 0, "error": 1}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Domain-invariant static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text); sarif emits a SARIF "
        "2.1.0 document for GitHub code scanning",
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to enable, e.g. RPL002,RPL003 "
        "(default: all rules)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning"),
        default="error",
        help="minimum severity that causes exit status 1; findings "
        "below the threshold are still reported (default: error)",
    )
    parser.add_argument(
        "--no-crossmod",
        action="store_true",
        help="skip pass 2 (cross-module rules RPL008-RPL010)",
    )
    parser.add_argument(
        "--no-concurrency",
        action="store_true",
        help="skip pass 3 (concurrency-safety rules RPL012-RPL016)",
    )
    parser.add_argument(
        "--no-durability",
        action="store_true",
        help="skip pass 4 (artifact-durability rules RPL017-RPL021)",
    )
    parser.add_argument(
        "--obs-docs",
        metavar="PATH",
        default=None,
        help="observability doc checked by the RPL010 drift gate "
        "(default: docs/OBSERVABILITY.md when it exists)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, (pragma, description) in sorted(ALL_RULES.items()):
            severity = RULE_SEVERITY.get(rule, "error")
            print(f"{rule}  [{severity}]  (# reprolint: {pragma})  {description}")
        return 0
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in select if r not in ALL_RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    findings = check_paths(args.paths, select=select)
    project = None
    if not args.no_crossmod or not args.no_concurrency:
        project = load_project(args.paths)
    if not args.no_crossmod and project is not None and project.modules:
        obs_doc = None
        doc_path = args.obs_docs
        if doc_path is None and Path("docs/OBSERVABILITY.md").is_file():
            doc_path = "docs/OBSERVABILITY.md"
        if doc_path is not None:
            try:
                obs_doc = (doc_path, Path(doc_path).read_text(encoding="utf-8"))
            except OSError as exc:
                print(f"cannot read --obs-docs {doc_path}: {exc}", file=sys.stderr)
                return 2
        findings.extend(check_project(project, select=select, obs_doc=obs_doc))
    if not args.no_concurrency and project is not None and project.modules:
        findings.extend(check_concurrency(project, select=select))
    if not args.no_durability:
        findings.extend(check_durability_paths(args.paths, select=select))
    threshold = _SEVERITY_RANK[args.fail_on]
    failing = [
        f
        for f in findings
        if _SEVERITY_RANK[RULE_SEVERITY.get(f.rule, "error")] >= threshold
    ]
    if args.format == "sarif":
        print(json.dumps(to_sarif(findings), indent=2))
    elif args.format == "json":
        payload = {
            "schema": JSON_SCHEMA_VERSION,
            "count": len(findings),
            "fail_on": args.fail_on,
            "findings": [
                dict(f.to_dict(), severity=RULE_SEVERITY.get(f.rule, "error"))
                for f in findings
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in findings:
            print(finding)
        if findings:
            print(f"\n{len(findings)} finding(s)")
    return 1 if failing else 0
