"""AST rule engine for reprolint.

Every rule is a purely syntactic over-approximation of a semantic
invariant; the escape hatch for deliberate exceptions is a
``# reprolint: allow-<name>`` pragma on the flagged line or the line
directly above.  Rules are scoped by file location (derived from the
path's ``repro`` package segment), so fixture snippets can exercise any
rule by passing a synthetic path to :func:`check_source`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

#: rule id -> (pragma name, one-line description)
ALL_RULES: Dict[str, Tuple[str, str]] = {
    "RPL001": (
        "allow-lonlat",
        "raw lon/lat arithmetic outside repro.geo (route through "
        "geo.projection / geo.distance)",
    ),
    "RPL002": (
        "allow-loop",
        "Python for-loop in a hot kernel module (vectorise or mark a "
        "reference oracle)",
    ),
    "RPL003": (
        "allow-unordered",
        "unordered set/dict.values() iteration feeding order-sensitive "
        "accumulation in repro.core",
    ),
    "RPL004": (
        "allow-legacy-random",
        "legacy np.random.* API (use np.random.default_rng(seed))",
    ),
    "RPL005": (
        "allow-mutable-default",
        "mutable default argument",
    ),
    "RPL006": (
        "allow-direct-timing",
        "direct stdlib timing call in src/repro outside repro.obs "
        "(route timing through repro.obs Timer/Span)",
    ),
    "RPL007": (
        "allow-dtype",
        "array-constructing call in src/repro without an explicit "
        "platform-stable dtype (int/np.int_ are int32 on Windows; "
        "name np.int64/np.float64)",
    ),
    "RPL008": (
        "allow-metric-name",
        "obs metric/span name is not a string literal registered in "
        "repro.obs.names (cross-module pass)",
    ),
    "RPL009": (
        "allow-contract",
        "public array-typed function missing an @array_contract, or a "
        "declared contract contradicting the annotations "
        "(cross-module pass)",
    ),
    "RPL010": (
        "allow-obs-docs",
        "metric catalogue drift between repro.obs.names and "
        "docs/OBSERVABILITY.md (cross-module pass)",
    ),
    "RPL011": (
        "allow-pool",
        "worker-pool construction in src/repro outside repro.parallel "
        "(fan out through repro.parallel so shared-memory lifecycle "
        "and pool reuse stay centralised)",
    ),
    "RPL012": (
        "allow-worker-callable",
        "worker-dispatched callable is not an importable module-level "
        "function (lambdas/closures/bound methods are fork+pickle "
        "hazards; concurrency pass)",
    ),
    "RPL013": (
        "allow-attached-write",
        "write to an attach_pack/attach_csd shared-memory view in "
        "worker-reachable code (attached views are read-only by "
        "contract; concurrency pass)",
    ),
    "RPL014": (
        "allow-shm",
        "shared_memory segment construction or resource-tracker "
        "bookkeeping outside repro/parallel/shm.py, or a create=True "
        "site with no structural unlink pairing (concurrency pass)",
    ),
    "RPL015": (
        "allow-worker-global",
        "module-level mutable state mutated from worker-reachable "
        "code (fork snapshots globals — parent and worker silently "
        "diverge; concurrency pass)",
    ),
    "RPL016": (
        "allow-thread",
        "threading primitive or ThreadPoolExecutor in a "
        "worker-reachable module (threads + fork deadlock hazard; "
        "concurrency pass)",
    ),
    "RPL017": (
        "allow-raw-open",
        "raw open() for writing in src/repro outside repro.ioutil / "
        "runner/fs.py (a torn write becomes a torn artifact; route "
        "through ioutil.atomic_write_*; durability pass)",
    ),
    "RPL018": (
        "allow-open-encoding",
        "text-mode open() in src/repro without an explicit encoding= "
        "(platform-default codec mangles non-ASCII; csv files also "
        "need newline=''; durability pass)",
    ),
    "RPL019": (
        "allow-lax-json",
        "json.dump/dumps in src/repro without allow_nan=False (NaN/inf "
        "serialise as non-standard tokens other parsers reject; use "
        "ioutil.strict_json_dump; durability pass)",
    ),
    "RPL020": (
        "allow-replace",
        "os.replace/os.rename/shutil.move or tempfile use in src/repro "
        "outside repro.ioutil / runner/fs.py (atomic-rename protocol "
        "is centralised in ioutil; durability pass)",
    ),
    "RPL021": (
        "allow-swallow",
        "broad except-and-swallow (except Exception/BaseException/"
        "bare: pass|continue) in an artifact-producing module — "
        "runner, stream, serve, data/persistence, ioutil — hides "
        "torn-write errors (durability pass)",
    ),
}

#: rule id -> severity (``--fail-on`` threshold in the CLI).  Every
#: current rule guards a correctness invariant, so everything defaults
#: to ``error``; ``warning`` exists so future style-tier rules (and
#: downstream ``--select`` users) get a documented place in the exit
#: code contract rather than an ad-hoc one.
RULE_SEVERITY: Dict[str, str] = {rule: "error" for rule in ALL_RULES}

#: Modules whose per-element Python loops are the exact regressions the
#: CSR kernel rewrite removed; (subpackage, filename) under repro/.
HOT_MODULES: FrozenSet[Tuple[str, str]] = frozenset(
    {
        ("geo", "index.py"),
        ("core", "popularity.py"),
        ("core", "recognition.py"),
        ("core", "merging.py"),
    }
)

#: Legacy module-level numpy.random functions (the pre-Generator API).
#: Everything here is either globally seeded or unseeded; both break the
#: "all randomness flows from an explicit default_rng(seed)" invariant.
LEGACY_NP_RANDOM: FrozenSet[str] = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "lognormal",
        "multivariate_normal",
        "RandomState",
        "get_state",
        "set_state",
    }
)

#: Worker-pool constructors (RPL011).  Matching on the callable's last
#: name catches both ``multiprocessing.Pool(...)`` and a bare
#: ``Pool(...)`` import; anything in ``repro.parallel`` is exempt — it
#: *is* the sanctioned pool layer.
_POOL_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"Pool", "ThreadPool", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)

#: Identifier tokens (after snake-case splitting) that mark a value as a
#: lon/lat coordinate in degrees.  ``d``-prefixed forms cover deltas.
_LONLAT_TOKEN = re.compile(r"^d?(lon|lng|lat|longitude|latitude|lonlat|latlon)s?$")

#: Angle-only math helpers: calling these outside repro.geo means
#: great-circle math is being reimplemented inline.
_ANGLE_FUNCS: FrozenSet[str] = frozenset({"radians", "degrees"})

_PRAGMA = re.compile(r"#\s*reprolint:\s*((?:allow-[a-z-]+[,\s]*)+)")

#: Calls whose result is order-independent even over unordered input:
#: ``math.fsum`` is correctly rounded, ``sorted`` imposes an order,
#:  min/max/len/any/all do not accumulate floats.
_ORDER_FREE_CALLS: FrozenSet[str] = frozenset({"fsum", "sorted"})

_MUTABLE_CALLS: FrozenSet[str] = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}
)

#: numpy array constructors whose default dtype is either inferred from
#: the input or platform-dependent (C ``long``: int32 on Windows,
#: int64 on Linux).  Every call in ``src/repro`` must pin the dtype
#: explicitly so the int64 CSR/label contract holds on every platform.
_ARRAY_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "zeros",
        "ones",
        "empty",
        "full",
        "arange",
    }
)

#: Positional index of the ``dtype`` argument per constructor (``arange``
#: omitted: its dtype position shifts with the start/stop/step forms, so
#: only the keyword spelling is recognised there).
_DTYPE_ARG_INDEX: Dict[str, int] = {
    "array": 1,
    "asarray": 1,
    "ascontiguousarray": 1,
    "empty": 1,
    "zeros": 1,
    "ones": 1,
    "full": 2,
}

#: numpy dtype attributes aliased to C types whose width varies by
#: platform/compiler.  ``np.int_``/``np.intp``/``np.long`` are the int32
#: trap; the C-named aliases are banned wholesale for the same reason.
_UNSTABLE_NP_DTYPES: FrozenSet[str] = frozenset(
    {
        "int_",
        "intc",
        "intp",
        "uint",
        "uintc",
        "uintp",
        "long",
        "ulong",
        "longlong",
        "ulonglong",
    }
)

#: dtype string spellings with the same platform dependence.
_UNSTABLE_DTYPE_STRINGS: FrozenSet[str] = frozenset(
    {"int", "uint", "intp", "uintp", "long", "ulong"}
)

#: ``time``-module clock functions.  Calling any of these directly in
#: ``src/repro/`` (outside ``repro.obs``, which IS the timing layer)
#: bypasses the observability registry: the measurement is invisible to
#: metrics snapshots and, for ``time.time``, not even monotonic.
_TIMING_FUNCS: FrozenSet[str] = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _repro_location(path: str) -> Tuple[Optional[str], str]:
    """``(subpackage, filename)`` of a file under the ``repro`` package.

    Returns ``(None, filename)`` for files outside ``repro`` (tools,
    scripts); top-level modules like ``repro/cli.py`` report
    subpackage ``""``.
    """
    parts = Path(path).as_posix().split("/")
    filename = parts[-1] if parts else path
    if "repro" not in parts:
        return None, filename
    rel = parts[parts.index("repro") + 1 :]
    return (rel[0] if len(rel) > 1 else ""), filename


def _pragmas_by_line(source: str) -> Tuple[Dict[int, FrozenSet[str]], FrozenSet[int]]:
    """Per-line pragma names plus the set of comment-only lines.

    Comment-only lines matter for suppression: a pragma anywhere in the
    contiguous comment block directly above a statement covers it, so
    multi-line justifications don't have to cram onto one line.
    """
    pragmas: Dict[int, FrozenSet[str]] = {}
    comment_lines = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if line.lstrip().startswith("#"):
            comment_lines.add(lineno)
        match = _PRAGMA.search(line)
        if match:
            names = re.findall(r"allow-[a-z-]+", match.group(1))
            pragmas[lineno] = frozenset(names)
    return pragmas, frozenset(comment_lines)


def decorator_lines_of(tree: ast.AST) -> FrozenSet[int]:
    """Every source line occupied by a decorator in ``tree``.

    The suppression walk skips through these so a pragma written above
    a decorated ``def`` still covers findings anchored *inside* the
    definition line (e.g. a mutable default argument).
    """
    lines = set()
    for node in ast.walk(tree):
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            start = min(d.lineno for d in decorators)
            lines.update(range(start, node.lineno))
    return frozenset(lines)


def is_suppressed(
    node: ast.AST,
    pragma: str,
    pragmas: Dict[int, FrozenSet[str]],
    comment_lines: FrozenSet[int],
    decorator_lines: FrozenSet[int] = frozenset(),
) -> bool:
    """Is ``pragma`` in force for a finding anchored at ``node``?

    A pragma suppresses when it sits (a) anywhere on the flagged
    statement's own lines — for block statements (``for``/``def``/
    ``with``…) the span ends at the header, so a pragma deep inside the
    body cannot silence the header's finding, while a multi-line
    expression counts in full — or (b) in the contiguous comment block
    directly above; decorator lines are transparent to the upward walk,
    so for decorated definitions the comment naturally sits above the
    first decorator.
    """
    lineno = getattr(node, "lineno", 0)
    start = lineno
    decorators = getattr(node, "decorator_list", None)
    if decorators:
        start = min(d.lineno for d in decorators)
    body = getattr(node, "body", None)
    if isinstance(body, list) and body and hasattr(body[0], "lineno"):
        span_end = body[0].lineno - 1
    else:
        span_end = getattr(node, "end_lineno", None) or lineno
    for line in range(min(start, lineno), max(span_end, lineno) + 1):
        if pragma in pragmas.get(line, frozenset()):
            return True
    line = start - 1
    while line in comment_lines or line in decorator_lines:
        if pragma in pragmas.get(line, frozenset()):
            return True
        line -= 1
    return False


def _is_lonlat_identifier(name: str) -> bool:
    return any(
        _LONLAT_TOKEN.match(token)
        for token in re.split(r"[_\d]+", name.lower())
        if token
    )


def _lonlat_expr(node: ast.expr) -> bool:
    """Does this expression read a lon/lat-named value?"""
    if isinstance(node, ast.Name):
        return _is_lonlat_identifier(node.id)
    if isinstance(node, ast.Attribute):
        return _is_lonlat_identifier(node.attr)
    if isinstance(node, ast.Subscript):
        return _lonlat_expr(node.value)
    if isinstance(node, ast.UnaryOp):
        return _lonlat_expr(node.operand)
    return False


def _call_name(node: ast.expr) -> str:
    """Trailing identifier of a call target: ``np.random.seed`` -> ``seed``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of an attribute chain (else '')."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_producing(node: ast.expr) -> bool:
    """Syntactically guaranteed to yield a set (unordered) iterable."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and _call_name(node.func) in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_producing(node.left) or _is_set_producing(node.right)
    return False


def _is_values_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "values"
        and not node.args
        and not node.keywords
    )


def _geo_imported_names(tree: ast.AST) -> FrozenSet[str]:
    """Names bound by ``from repro.geo... import ...`` anywhere in the file.

    Calling the geo API by its imported name is the sanctioned route for
    RPL001; only re-implementations are flagged.
    """
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and (node.module or "").startswith(
            "repro.geo"
        ):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return frozenset(names)


class _Checker(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        pragmas: Dict[int, FrozenSet[str]],
        comment_lines: FrozenSet[int] = frozenset(),
        select: Optional[FrozenSet[str]] = None,
        geo_imports: FrozenSet[str] = frozenset(),
        decorator_lines: FrozenSet[int] = frozenset(),
    ) -> None:
        self.path = path
        self.pragmas = pragmas
        self.comment_lines = comment_lines
        self.decorator_lines = decorator_lines
        self.select = select
        self.geo_imports = geo_imports
        self.findings: List[Finding] = []
        subpackage, filename = _repro_location(path)
        self.in_geo = subpackage == "geo"
        self.in_core = subpackage == "core"
        self.in_hot = (subpackage, filename) in HOT_MODULES
        # RPL006 covers the whole repro package except repro.obs, the
        # sanctioned timing layer itself.
        self.timing_scoped = subpackage is not None and subpackage != "obs"
        # RPL007 covers the whole repro package: dtype discipline is a
        # repo-wide contract, not a per-subsystem one.
        self.in_repro = subpackage is not None
        # RPL011 exempts the sanctioned pool layer itself.
        self.in_parallel = subpackage == "parallel"

    # -- bookkeeping ---------------------------------------------------

    def _suppressed(self, node: ast.AST, pragma: str) -> bool:
        return is_suppressed(
            node, pragma, self.pragmas, self.comment_lines, self.decorator_lines
        )

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if self.select is not None and rule not in self.select:
            return
        pragma, _ = ALL_RULES[rule]
        if self._suppressed(node, pragma):
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    # -- RPL001: lon/lat arithmetic stays inside repro.geo -------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if not self.in_geo and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)
        ):
            for side in (node.left, node.right):
                if _lonlat_expr(side):
                    self._report(
                        node,
                        "RPL001",
                        "arithmetic on lon/lat degrees outside repro.geo; "
                        "project via geo.projection.LocalProjection or measure "
                        "via geo.distance",
                    )
                    break
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        dotted = _dotted(node.func)
        if not self.in_geo:
            if "haversine" in name.lower() and name not in self.geo_imports:
                self._report(
                    node,
                    "RPL001",
                    "haversine math outside repro.geo; call "
                    "geo.distance.haversine_distance through the geo API",
                )
            elif name in _ANGLE_FUNCS and dotted.startswith("math."):
                self._report(
                    node,
                    "RPL001",
                    f"angle conversion math.{name}() outside repro.geo "
                    "suggests inline great-circle math; route through repro.geo",
                )
        # RPL003: order-sensitive reduction over unordered iterable.
        if self.in_core and name == "sum" and node.args:
            self._check_unordered_reduction(node)
        # RPL004: legacy numpy random API.
        self._check_legacy_random(node.func, dotted)
        # RPL007: explicit platform-stable dtypes on array constructors.
        self._check_dtype_discipline(node, name, dotted)
        # RPL006: direct timing calls bypass the observability layer.
        if (
            self.timing_scoped
            and name in _TIMING_FUNCS
            and dotted.split(".")[:-1] == ["time"]
        ):
            self._report(
                node,
                "RPL006",
                f"direct time.{name}() in src/repro bypasses the "
                "observability layer; use a repro.obs Timer/Span so the "
                "measurement lands in the metrics snapshot",
            )
        # RPL011: only repro.parallel may construct worker pools.
        if (
            self.in_repro
            and not self.in_parallel
            and name in _POOL_CONSTRUCTORS
        ):
            self._report(
                node,
                "RPL011",
                f"{name}() in src/repro outside repro.parallel; use "
                "repro.parallel (shared-memory handles, persistent "
                "pools, guaranteed segment cleanup) instead of an "
                "ad-hoc worker pool",
            )
        self.generic_visit(node)

    # -- RPL002: no interpreter loops in hot kernels -------------------

    def visit_For(self, node: ast.For) -> None:
        if self.in_hot:
            iter_call = _call_name(node.iter.func) if isinstance(node.iter, ast.Call) else ""
            if iter_call != "range":
                self._report(
                    node,
                    "RPL002",
                    "Python for-loop in a hot kernel module; vectorise with "
                    "the batched CSR kernels or mark a reference oracle with "
                    "'# reprolint: allow-loop'",
                )
        if self.in_core:
            self._check_unordered_for(node)
        self.generic_visit(node)

    # -- RPL003 helpers ------------------------------------------------

    def _check_unordered_for(self, node: ast.For) -> None:
        if _is_set_producing(node.iter) or _is_values_call(node.iter):
            self._report(
                node,
                "RPL003",
                "for-loop over an unordered set/dict.values() in repro.core; "
                "iterate sorted(...) so accumulation order is deterministic",
            )

    def _check_unordered_reduction(self, call: ast.Call) -> None:
        arg = call.args[0]
        unordered: Optional[ast.expr] = None
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for comp in arg.generators:
                if _is_set_producing(comp.iter) or _is_values_call(comp.iter):
                    unordered = comp.iter
                    break
        elif _is_set_producing(arg) or _is_values_call(arg):
            unordered = arg
        if unordered is not None:
            self._report(
                call,
                "RPL003",
                "sum() over an unordered set/dict.values() in repro.core is "
                "order-sensitive float accumulation; use math.fsum "
                "(order-independent) or iterate sorted(...)",
            )

    # -- RPL007: explicit platform-stable dtypes -----------------------

    def _check_dtype_discipline(
        self, node: ast.Call, name: str, dotted: str
    ) -> None:
        if not self.in_repro:
            return
        is_np_ctor = name in _ARRAY_CONSTRUCTORS and dotted.split(".")[:-1] in (
            ["np"],
            ["numpy"],
        )
        is_astype = name == "astype" and isinstance(node.func, ast.Attribute)
        if not (is_np_ctor or is_astype):
            return
        dtype_expr: Optional[ast.expr] = None
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype_expr = kw.value
                break
        if dtype_expr is None:
            if is_astype:
                if node.args:
                    dtype_expr = node.args[0]
            else:
                idx = _DTYPE_ARG_INDEX.get(name)
                if idx is not None and len(node.args) > idx:
                    dtype_expr = node.args[idx]
        label = f"np.{name}" if is_np_ctor else ".astype"
        if dtype_expr is None:
            self._report(
                node,
                "RPL007",
                f"{label}() without an explicit dtype; the inferred "
                "default is platform-dependent (C long is int32 on "
                "Windows) — name np.int64/np.float64",
            )
            return
        unstable: Optional[str] = None
        if isinstance(dtype_expr, ast.Name) and dtype_expr.id == "int":
            unstable = "int"
        elif isinstance(dtype_expr, ast.Attribute):
            dtype_dotted = _dotted(dtype_expr)
            parts = dtype_dotted.split(".")
            if (
                parts[0] in ("np", "numpy")
                and parts[-1] in _UNSTABLE_NP_DTYPES
            ):
                unstable = dtype_dotted
        elif (
            isinstance(dtype_expr, ast.Constant)
            and isinstance(dtype_expr.value, str)
            and dtype_expr.value in _UNSTABLE_DTYPE_STRINGS
        ):
            unstable = repr(dtype_expr.value)
        if unstable is not None:
            self._report(
                node,
                "RPL007",
                f"{label}(dtype={unstable}) is platform-dependent "
                "(int32 on Windows, int64 on Linux); name np.int64 "
                "explicitly",
            )

    # -- RPL004: legacy numpy random -----------------------------------

    def _check_legacy_random(self, func: ast.expr, dotted: str) -> None:
        if not dotted:
            return
        parts = dotted.split(".")
        if (
            len(parts) >= 3
            and parts[-3] in ("np", "numpy")
            and parts[-2] == "random"
            and parts[-1] in LEGACY_NP_RANDOM
        ):
            self._report(
                func,
                "RPL004",
                f"legacy np.random.{parts[-1]}() is globally seeded or "
                "unseeded; create an explicit np.random.default_rng(seed)",
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name in LEGACY_NP_RANDOM:
                    self._report(
                        node,
                        "RPL004",
                        f"importing legacy numpy.random.{alias.name}; use "
                        "np.random.default_rng(seed)",
                    )
        if self.timing_scoped and node.module == "time":
            for alias in node.names:
                if alias.name in _TIMING_FUNCS:
                    self._report(
                        node,
                        "RPL006",
                        f"importing time.{alias.name} in src/repro "
                        "bypasses the observability layer; use a "
                        "repro.obs Timer/Span",
                    )
        self.generic_visit(node)

    # -- RPL005: mutable default arguments -----------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and _call_name(default.func) in _MUTABLE_CALLS
            )
            if mutable:
                self._report(
                    default,
                    "RPL005",
                    "mutable default argument is shared across calls; default "
                    "to None and construct inside the function",
                )


def check_source(
    source: str, path: str = "<string>", select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one source string; ``path`` drives rule scoping."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=(exc.offset or 0),
                rule="RPL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    pragmas, comment_lines = _pragmas_by_line(source)
    checker = _Checker(
        path,
        pragmas,
        comment_lines,
        select=frozenset(select) if select is not None else None,
        geo_imports=_geo_imported_names(tree),
        decorator_lines=decorator_lines_of(tree),
    )
    checker.visit(tree)
    return sorted(checker.findings, key=lambda f: (f.line, f.col, f.rule))


def check_file(path: str, select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one file from disk."""
    text = Path(path).read_text(encoding="utf-8")
    return check_source(text, path=str(path), select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from (str(f) for f in sorted(p.rglob("*.py")))
        else:
            yield str(p)


def check_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``."""
    findings: List[Finding] = []
    chosen = frozenset(select) if select is not None else None
    for path in iter_python_files(paths):
        findings.extend(check_file(path, select=chosen))
    return findings
