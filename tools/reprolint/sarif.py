"""SARIF 2.1.0 emitter for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests, so ``python -m tools.reprolint --format sarif``
lets CI annotate pull requests with findings inline.  The document is a
single run: the tool driver carries the full rule catalogue (id, help
text naming the pragma, default severity level), and each finding maps
to a ``result`` with a physical location.

Only the stable core of the spec is emitted — version, driver rules,
results with ``ruleId``/``ruleIndex``/``level``/``message``/
``locations`` — which is the subset code-scanning consumers require.
The document records its schema in the standard ``version``/``$schema``
keys; the tool's own semantic version is ``SARIF_TOOL_VERSION``, bumped
on any structural change to what reprolint emits (mirroring the JSON
envelope's ``schema`` integer).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from tools.reprolint.rules import ALL_RULES, RULE_SEVERITY, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Version reported in ``tool.driver.version``.  Major = JSON envelope
#: schema generation, minor = analysis passes available.
SARIF_TOOL_VERSION = "2.4.0"

#: reprolint severity -> SARIF result level.  Both reprolint tiers map
#: onto SARIF's standard ladder (``error`` > ``warning`` > ``note``).
_LEVELS: Dict[str, str] = {"error": "error", "warning": "warning"}


def _driver_rules() -> List[Dict[str, object]]:
    """The rule catalogue, ordered by id (``ruleIndex`` contract)."""
    rules: List[Dict[str, object]] = []
    for rule_id in sorted(ALL_RULES):
        pragma, description = ALL_RULES[rule_id]
        severity = RULE_SEVERITY.get(rule_id, "error")
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": description},
                "help": {
                    "text": (
                        f"Suppress a deliberate exception with "
                        f"'# reprolint: {pragma}' on the flagged line "
                        "or the comment block above."
                    )
                },
                "defaultConfiguration": {
                    "level": _LEVELS.get(severity, "error")
                },
            }
        )
    return rules


def to_sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """A complete SARIF 2.1.0 document for ``findings``."""
    rule_index = {rule_id: i for i, rule_id in enumerate(sorted(ALL_RULES))}
    results: List[Dict[str, object]] = []
    for f in findings:
        severity = RULE_SEVERITY.get(f.rule, "error")
        result: Dict[str, object] = {
            "ruleId": f.rule,
            "level": _LEVELS.get(severity, "error"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col),
                        },
                    }
                }
            ],
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": SARIF_TOOL_VERSION,
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": _driver_rules(),
                    }
                },
                "results": results,
            }
        ],
    }
