"""Cross-module analysis pass (pass 2) for reprolint.

Pass 1 (:mod:`tools.reprolint.rules`) checks each file in isolation.
This pass parses every module under ``src/repro`` into a project-wide
symbol table and checks the contracts that only make sense *between*
modules:

``RPL008``
    Every ``counter``/``gauge``/``histogram``/``timer``/``span`` call
    in ``src/repro`` (outside ``repro.obs`` itself) must pass a string
    literal registered in the matching set of ``repro.obs.names`` — no
    computed names, no ad-hoc dotted strings.  The registry sets are
    read straight from the ``names.py`` AST (``frozenset({...})``
    literals), so this pass never imports the package under analysis.

``RPL009``
    (a) Public functions in the contract-bearing modules
    (:data:`CONTRACT_MODULES`) whose annotations use the
    ``repro.types`` array aliases must carry an ``@array_contract``
    declaration.  (b) Every declared contract anywhere in ``src/repro``
    is cross-checked against the function's annotations: unknown
    parameter names, dtype specs contradicting the alias vocabulary
    (``IndexArray`` ⇒ ``int64``), and CSR/array spec mix-ups are all
    findings.  This is what keeps the static contract layer and the
    runtime sanitizer (``repro.contracts``) from drifting apart.

``RPL010``
    Docs-drift gate: every registered metric/span name must appear
    (backticked) in ``docs/OBSERVABILITY.md``, and every metric-like
    dotted name in that doc's catalogue section must be registered.

Like pass 1, everything here is stdlib-only and purely syntactic;
``# reprolint: allow-<name>`` pragmas suppress individual findings
(RPL010 anchors in the markdown doc, which has no pragma channel — fix
the drift instead).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from tools.reprolint.rules import (
    ALL_RULES,
    Finding,
    _call_name,
    _pragmas_by_line,
    decorator_lines_of,
    iter_python_files,
    is_suppressed,
)

#: Registry method name -> names.py set that sanctions its first argument.
METRIC_METHODS: Dict[str, str] = {
    "counter": "COUNTERS",
    "gauge": "GAUGES",
    "histogram": "HISTOGRAMS",
    "timer": "TIMERS",
    "span": "SPAN_LABELS",
}

#: The module-level frozensets read from ``repro/obs/names.py``.
REGISTRY_SETS: Tuple[str, ...] = (
    "COUNTERS",
    "GAUGES",
    "HISTOGRAMS",
    "TIMERS",
    "SPAN_LABELS",
    "SPAN_NAMES",
)

#: ``repro.types`` alias -> element dtype it promises.
ALIAS_DTYPES: Dict[str, str] = {
    "Float64Array": "float64",
    "MetersArray": "float64",
    "LonLatArray": "float64",
    "IndexArray": "int64",
    "BoolArray": "bool",
}

#: Annotation names that mark a signature as array-typed for RPL009(a).
ARRAY_ALIASES: FrozenSet[str] = frozenset(ALIAS_DTYPES) | {"CSRQuery"}

#: Modules (dotted) whose public array-typed functions are the hot
#: boundaries the sanitizer must cover: RPL009(a) requires a declared
#: contract on each.  Consistency checking (RPL009(b)) is repo-wide.
CONTRACT_MODULES: FrozenSet[str] = frozenset(
    {
        "repro.geo.index",
        "repro.geo.projection",
        "repro.core.popularity",
        "repro.core.constructor",
        "repro.core.merging",
        "repro.core.csd",
        "repro.core.recognition",
        "repro.data.persistence",
        "repro.runner.runner",
    }
)

#: Decorators that exempt a function from RPL009(a): properties expose
#: attributes (contracts belong on the producer), overload stubs have no
#: body to wrap.
_EXEMPT_DECORATORS: FrozenSet[str] = frozenset(
    {"property", "cached_property", "overload", "setter", "getter"}
)

_SPEC_CALLS: FrozenSet[str] = frozenset({"ArraySpec", "CSRSpec", "SameLength"})

#: Metric-like dotted token inside the doc catalogue: lowercase dotted
#: path, no slashes/spaces, at least one dot.
_DOC_METRIC_TOKEN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


@dataclass(frozen=True)
class FunctionInfo:
    """One (possibly nested/method) function definition in the project."""

    module: str
    path: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    contract: Optional[ast.Call]  # the @array_contract(...) call, if any


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed module plus its pragma map."""

    path: str
    module: str
    tree: ast.Module
    pragmas: Dict[int, FrozenSet[str]]
    comment_lines: FrozenSet[int]
    decorator_lines: FrozenSet[int]


@dataclass
class Project:
    """Repo-wide symbol table for pass 2."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: names.py registry sets (set name -> literal names), when found.
    registry: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)

    @property
    def documented_names(self) -> FrozenSet[str]:
        """Every name ``docs/OBSERVABILITY.md`` must carry (RPL010)."""
        out: FrozenSet[str] = frozenset()
        for key in ("COUNTERS", "GAUGES", "HISTOGRAMS", "TIMERS", "SPAN_NAMES"):
            out |= self.registry.get(key, frozenset())
        return out


def module_name(path: str) -> Optional[str]:
    """Dotted module name of a file under the ``repro`` package."""
    parts = Path(path).as_posix().split("/")
    if "repro" not in parts:
        return None
    rel = parts[parts.index("repro") :]
    if rel[-1].endswith(".py"):
        rel[-1] = rel[-1][: -len(".py")]
    if rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel)


def _extract_registry(tree: ast.Module) -> Dict[str, FrozenSet[str]]:
    """Read the ``frozenset({...})`` literals out of ``names.py``."""
    out: Dict[str, FrozenSet[str]] = {}
    for node in tree.body:
        target: Optional[str] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            target, value = node.target.id, node.value
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            target, value = node.targets[0].id, node.value
        if target not in REGISTRY_SETS or value is None:
            continue
        if (
            isinstance(value, ast.Call)
            and _call_name(value.func) == "frozenset"
            and value.args
        ):
            try:
                literal = ast.literal_eval(value.args[0])
            except ValueError:
                continue
            out[target] = frozenset(str(name) for name in literal)
    return out


def _contract_decorator(node: ast.AST) -> Optional[ast.Call]:
    for dec in getattr(node, "decorator_list", []):
        if isinstance(dec, ast.Call) and _call_name(dec.func) == "array_contract":
            return dec
    return None


def _decorator_names(node: ast.AST) -> FrozenSet[str]:
    names = set()
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = _call_name(target)
        if name:
            names.add(name)
    return frozenset(names)


def _walk_functions(info: ModuleInfo) -> Iterable[FunctionInfo]:
    def visit(body: Sequence[ast.stmt], prefix: str) -> Iterable[FunctionInfo]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                yield FunctionInfo(
                    module=info.module,
                    path=info.path,
                    qualname=qual,
                    node=node,
                    contract=_contract_decorator(node),
                )
                yield from visit(node.body, f"{qual}.<locals>.")
            elif isinstance(node, ast.ClassDef):
                yield from visit(node.body, f"{prefix}{node.name}.")

    return visit(info.tree.body, "")


def build_project(files: Iterable[Tuple[str, str]]) -> Project:
    """Parse ``(path, source)`` pairs into a :class:`Project`.

    Files that fail to parse are skipped — pass 1 already reports the
    syntax error.
    """
    project = Project()
    for path, source in files:
        dotted = module_name(path)
        if dotted is None:
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        pragmas, comment_lines = _pragmas_by_line(source)
        info = ModuleInfo(
            path=path,
            module=dotted,
            tree=tree,
            pragmas=pragmas,
            comment_lines=comment_lines,
            decorator_lines=decorator_lines_of(tree),
        )
        project.modules[dotted] = info
        if dotted == "repro.obs.names":
            project.registry = _extract_registry(tree)
        project.functions.extend(_walk_functions(info))
    return project


def load_project(paths: Sequence[str]) -> Project:
    """Build a project from every ``repro``-package file under ``paths``."""
    files = []
    for path in iter_python_files(paths):
        if module_name(path) is None:
            continue
        files.append((path, Path(path).read_text(encoding="utf-8")))
    return build_project(files)


class _Pass2:
    def __init__(self, project: Project, select: Optional[FrozenSet[str]]) -> None:
        self.project = project
        self.select = select
        self.findings: List[Finding] = []

    def _report(
        self,
        info: Optional[ModuleInfo],
        node: Optional[ast.AST],
        rule: str,
        message: str,
        path: Optional[str] = None,
        line: int = 0,
    ) -> None:
        if self.select is not None and rule not in self.select:
            return
        pragma, _ = ALL_RULES[rule]
        if (
            info is not None
            and node is not None
            and is_suppressed(
                node,
                pragma,
                info.pragmas,
                info.comment_lines,
                info.decorator_lines,
            )
        ):
            return
        self.findings.append(
            Finding(
                path=path or (info.path if info else "<project>"),
                line=getattr(node, "lineno", line) if node is not None else line,
                col=(getattr(node, "col_offset", 0) + 1) if node is not None else 1,
                rule=rule,
                message=message,
            )
        )

    # -- RPL008: metric names come from the registry -------------------

    def check_metric_names(self) -> None:
        registry = self.project.registry
        for info in self.project.modules.values():
            if info.module == "repro.obs" or info.module.startswith("repro.obs."):
                continue
            for node in ast.walk(info.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in METRIC_METHODS
                    and node.args
                ):
                    continue
                kind = node.func.attr
                set_name = METRIC_METHODS[kind]
                arg = node.args[0]
                if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                    self._report(
                        info,
                        node,
                        "RPL008",
                        f"{kind}() name must be a string literal from "
                        f"repro.obs.names.{set_name}, not a computed "
                        "expression — the registry is the only source of "
                        "metric names",
                    )
                    continue
                sanctioned = registry.get(set_name)
                if sanctioned is not None and arg.value not in sanctioned:
                    self._report(
                        info,
                        node,
                        "RPL008",
                        f"{kind}() name {arg.value!r} is not registered in "
                        f"repro.obs.names.{set_name}; add it there (and to "
                        "docs/OBSERVABILITY.md) or fix the typo",
                    )

    # -- RPL009: declared contracts exist and agree with annotations ---

    def _annotation_aliases(self, node: Optional[ast.expr]) -> List[str]:
        if node is None:
            return []
        found: List[str] = []
        for sub in ast.walk(node):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                # String annotation: cheap token scan is enough here.
                for alias in ARRAY_ALIASES:
                    if re.search(rf"\b{alias}\b", sub.value):
                        found.append(alias)
                continue
            if name in ARRAY_ALIASES:
                found.append(name)
        return found

    def _param_names(self, node: ast.AST) -> FrozenSet[str]:
        args = node.args  # type: ignore[attr-defined]
        return frozenset(
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        )

    def _param_annotations(self, node: ast.AST) -> Dict[str, Optional[ast.expr]]:
        args = node.args  # type: ignore[attr-defined]
        return {
            a.arg: a.annotation
            for a in args.posonlyargs + args.args + args.kwonlyargs
        }

    def _spec_calls(self, value: ast.expr) -> List[ast.Call]:
        """Spec constructor calls in a decorator keyword value (handles
        ``ret=[spec, spec]``)."""
        if isinstance(value, ast.Call) and _call_name(value.func) in _SPEC_CALLS:
            return [value]
        if isinstance(value, (ast.List, ast.Tuple)):
            out = []
            for element in value.elts:
                out.extend(self._spec_calls(element))
            return out
        return []

    def _spec_kwarg(self, spec: ast.Call, name: str) -> Optional[object]:
        for kw in spec.keywords:
            if kw.arg == name and isinstance(kw.value, ast.Constant):
                return kw.value.value
        return None

    def check_contracts(self) -> None:
        for fn in self.project.functions:
            info = self.project.modules[fn.module]
            node = fn.node
            if fn.contract is None:
                self._check_required(fn, info)
                continue
            params = self._param_names(node)
            annotations = self._param_annotations(node)
            for kw in fn.contract.keywords:
                if kw.arg is None or kw.arg == "enforce":
                    continue
                if kw.arg == "ret":
                    returns = getattr(node, "returns", None)
                    for spec in self._spec_calls(kw.value):
                        self._check_spec(fn, info, spec, returns, params, "return")
                    continue
                if kw.arg not in params:
                    self._report(
                        info,
                        fn.contract,
                        "RPL009",
                        f"@array_contract on {fn.qualname} names unknown "
                        f"parameter {kw.arg!r}",
                    )
                    continue
                for spec in self._spec_calls(kw.value):
                    self._check_spec(
                        fn, info, spec, annotations.get(kw.arg), params, kw.arg
                    )

    def _check_required(self, fn: FunctionInfo, info: ModuleInfo) -> None:
        node = fn.node
        if fn.module not in CONTRACT_MODULES:
            return
        name = getattr(node, "name", "")
        if name.startswith("_"):
            return
        if _decorator_names(node) & _EXEMPT_DECORATORS:
            return
        if "<locals>" in fn.qualname:
            return
        aliases = []
        for annotation in self._param_annotations(node).values():
            aliases.extend(self._annotation_aliases(annotation))
        aliases.extend(self._annotation_aliases(getattr(node, "returns", None)))
        if not aliases:
            return
        self._report(
            info,
            node,
            "RPL009",
            f"public function {fn.qualname} in {fn.module} uses the "
            f"repro.types array aliases ({', '.join(sorted(set(aliases)))}) "
            "but declares no @array_contract; declare one so the "
            "REPRO_SANITIZE runtime checks cover this boundary",
        )

    def _check_spec(
        self,
        fn: FunctionInfo,
        info: ModuleInfo,
        spec: ast.Call,
        annotation: Optional[ast.expr],
        params: FrozenSet[str],
        where: str,
    ) -> None:
        kind = _call_name(spec.func)
        # Shape couplings must reference real parameters.
        coupling = None
        if kind == "ArraySpec":
            coupling = self._spec_kwarg(spec, "same_length_as")
        elif kind == "CSRSpec":
            coupling = self._spec_kwarg(spec, "centers")
        elif kind == "SameLength":
            coupling = self._spec_kwarg(spec, "of")
            if coupling is None and spec.args and isinstance(
                spec.args[0], ast.Constant
            ):
                coupling = spec.args[0].value
        if coupling is not None and coupling not in params:
            self._report(
                info,
                spec,
                "RPL009",
                f"@array_contract on {fn.qualname}: {kind} couples "
                f"{where} to unknown parameter {coupling!r}",
            )
        aliases = self._annotation_aliases(annotation)
        if not aliases:
            return
        # Drilled specs validate a sub-object, not the annotated value.
        if kind == "ArraySpec" and (
            self._spec_kwarg(spec, "attr") is not None
            or self._spec_kwarg(spec, "item") is not None
        ):
            return
        if kind == "CSRSpec" and "CSRQuery" not in aliases:
            self._report(
                info,
                spec,
                "RPL009",
                f"@array_contract on {fn.qualname}: {where} is declared "
                "CSRSpec but its annotation is not CSRQuery",
            )
            return
        if kind == "ArraySpec":
            if "CSRQuery" in aliases and len(set(aliases)) == 1:
                self._report(
                    info,
                    spec,
                    "RPL009",
                    f"@array_contract on {fn.qualname}: {where} is "
                    "annotated CSRQuery but declared ArraySpec; use "
                    "CSRSpec so the (indices, offsets) coupling is checked",
                )
                return
            declared = self._spec_kwarg(spec, "dtype")
            if declared is None:
                return
            implied = {
                ALIAS_DTYPES[a] for a in aliases if a in ALIAS_DTYPES
            }
            if implied and declared not in implied:
                alias_list = ", ".join(sorted(set(aliases)))
                self._report(
                    info,
                    spec,
                    "RPL009",
                    f"@array_contract on {fn.qualname}: {where} declares "
                    f"dtype {declared!r} but its annotation "
                    f"({alias_list}) implies "
                    f"{'/'.join(sorted(implied))} — the static and "
                    "runtime contracts have drifted",
                )

    # -- RPL010: docs-drift gate ---------------------------------------

    def check_obs_docs(self, doc_text: str, doc_path: str) -> None:
        documented = self.project.documented_names
        if not documented:
            return
        lines = doc_text.splitlines()
        for name in sorted(documented):
            if f"`{name}`" not in doc_text:
                self._report(
                    None,
                    None,
                    "RPL010",
                    f"registered name {name!r} (repro.obs.names) is "
                    f"missing from {doc_path}; document it in the metric "
                    "catalogue",
                    path=doc_path,
                    line=1,
                )
        in_catalogue = False
        known = documented | self.project.registry.get("SPAN_LABELS", frozenset())
        for lineno, line in enumerate(lines, start=1):
            if line.startswith("## "):
                in_catalogue = line.strip().lower() == "## metric catalogue"
                continue
            if not in_catalogue:
                continue
            for token in re.findall(r"`([^`]+)`", line):
                if not _DOC_METRIC_TOKEN.match(token):
                    continue
                if token.startswith("repro."):
                    continue
                if token not in known:
                    self._report(
                        None,
                        None,
                        "RPL010",
                        f"{doc_path} documents {token!r} but it is not "
                        "registered in repro.obs.names — fix the typo or "
                        "register the name",
                        path=doc_path,
                        line=lineno,
                    )


def check_project(
    project: Project,
    select: Optional[Iterable[str]] = None,
    obs_doc: Optional[Tuple[str, str]] = None,
) -> List[Finding]:
    """Run every cross-module rule over ``project``.

    ``obs_doc`` is an optional ``(path, text)`` pair for the RPL010
    docs-drift gate; omit it to skip the gate (e.g. fixture runs).
    """
    chosen = frozenset(select) if select is not None else None
    checker = _Pass2(project, chosen)
    checker.check_metric_names()
    checker.check_contracts()
    if obs_doc is not None:
        doc_path, doc_text = obs_doc
        checker.check_obs_docs(doc_text, doc_path)
    return sorted(checker.findings, key=lambda f: (f.path, f.line, f.col, f.rule))
