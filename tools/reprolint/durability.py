"""Pass 4: artifact-durability rules (RPL017–RPL021).

The repo persists artifacts other processes depend on — runner
manifests, stream epoch commits, the ``csd-latest.json`` alias a live
serve daemon hot-reloads.  ``repro.ioutil`` centralises the three
durability idioms (atomic tmp+replace writes, pinned encodings, strict
JSON); this pass statically forbids new call sites from bypassing it:

* **RPL017** — no raw ``open(..., "w"/"wb"/"x"/"+")`` (or
  ``Path.write_text``/``write_bytes``) in ``src/repro`` outside the
  sanctioned writers (``repro/ioutil.py``, ``repro/runner/fs.py``).  A
  raw overwrite is torn by a crash mid-write; append mode (``"a"``) is
  exempt — the quarantine log is append-by-design and atomicity would
  lose earlier rows.  Pragma ``allow-raw-open``.
* **RPL018** — every text-mode ``open()`` anywhere in ``src/repro``
  pins ``encoding=`` (the platform default is cp1252 on Windows), and
  a module that uses the ``csv`` module must also pin ``newline=""``
  on its text opens (csv's own line-ending discipline breaks under
  newline translation).  Binary mode is exempt.  Pragma
  ``allow-open-encoding``.
* **RPL019** — every ``json.dump``/``json.dumps`` in ``src/repro``
  passes ``allow_nan=False`` (Python's default emits the non-standard
  ``NaN``/``Infinity`` tokens, which other parsers reject), or uses
  ``ioutil.strict_json_dump``.  Pragma ``allow-lax-json``.
* **RPL020** — ``os.replace``/``os.rename``/``shutil.move`` and the
  ``tempfile`` module are confined to the sanctioned writers: the
  atomic-rename protocol (tmp naming, cleanup-on-failure, fault-point
  announcements) lives in exactly one place.  Pragma ``allow-replace``.
* **RPL021** — no broad except-and-swallow (``except Exception:`` /
  ``except BaseException:`` / bare ``except:`` whose body is only
  ``pass``/``continue``, or ``contextlib.suppress(Exception)``) in the
  artifact-producing subsystems (``runner``, ``stream``, ``serve``,
  ``data/persistence.py``, ``ioutil.py``).  A swallowed torn-write
  error resurfaces later as a corrupt resume.  Narrow excepts
  (``FileNotFoundError``) and handlers that do real work are fine.
  Pragma ``allow-swallow``.

Like pass 1, every rule here is a syntactic over-approximation scoped
by ``_repro_location`` — files outside the ``repro`` package (tools,
tests, benches) are never flagged, so the linter can run over the whole
tree.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from tools.reprolint.rules import (
    ALL_RULES,
    Finding,
    _call_name,
    _dotted,
    _pragmas_by_line,
    _repro_location,
    decorator_lines_of,
    is_suppressed,
    iter_python_files,
)

#: The five durability rules this pass owns.
DURABILITY_RULES: FrozenSet[str] = frozenset(
    {"RPL017", "RPL018", "RPL019", "RPL020", "RPL021"}
)

#: ``(subpackage, filename)`` pairs allowed to hand-roll writes and the
#: rename protocol: ``repro/ioutil.py`` IS the sanctioned layer, and
#: ``repro/runner/fs.py`` is the injectable filesystem boundary that
#: wraps it (fault injection needs the raw hooks).
_SANCTIONED_WRITERS: FrozenSet[Tuple[str, str]] = frozenset(
    {("", "ioutil.py"), ("runner", "fs.py")}
)

#: Subsystems whose swallowed exceptions can hide torn artifacts
#: (RPL021): the checkpoint/commit paths and the modules that produce
#: or serve durable state.
_NO_SWALLOW_SUBPACKAGES: FrozenSet[str] = frozenset(
    {"runner", "stream", "serve"}
)
_NO_SWALLOW_FILES: FrozenSet[Tuple[str, str]] = frozenset(
    {("data", "persistence.py"), ("", "ioutil.py")}
)

#: Rename/move callables that implement an ad-hoc atomic-publish step.
_RENAME_CALLS: FrozenSet[str] = frozenset(
    {"os.replace", "os.rename", "os.renames", "shutil.move"}
)


def _literal_str(node: Optional[ast.expr]) -> Optional[str]:
    """The value of a string-literal expression, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _open_mode(call: ast.Call) -> Optional[str]:
    """The literal ``mode`` argument of a builtin ``open()`` call.

    Returns ``"r"`` when omitted (open's default) and None when the
    mode is a non-literal expression (dynamic modes are not second-
    guessed; the encoding rule still applies via its own check).
    """
    mode_expr = _keyword(call, "mode")
    if mode_expr is None and len(call.args) >= 2:
        mode_expr = call.args[1]
    if mode_expr is None:
        return "r"
    return _literal_str(mode_expr)


def _swallow_only_body(body: Sequence[ast.stmt]) -> bool:
    """Is this handler body pure swallow (pass/continue, docstring ok)?"""
    real = [
        stmt
        for stmt in body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        )
    ]
    return bool(real) and all(
        isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in real
    )


class _DurabilityChecker(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        pragmas: Dict[int, FrozenSet[str]],
        comment_lines: FrozenSet[int],
        select: Optional[FrozenSet[str]],
        decorator_lines: FrozenSet[int],
        uses_csv: bool,
    ) -> None:
        self.path = path
        self.pragmas = pragmas
        self.comment_lines = comment_lines
        self.decorator_lines = decorator_lines
        self.select = select
        self.uses_csv = uses_csv
        self.findings: List[Finding] = []
        subpackage, filename = _repro_location(path)
        self.in_repro = subpackage is not None
        location = (subpackage or "", filename)
        self.sanctioned_writer = location in _SANCTIONED_WRITERS
        self.no_swallow = self.in_repro and (
            subpackage in _NO_SWALLOW_SUBPACKAGES
            or location in _NO_SWALLOW_FILES
        )

    # -- bookkeeping ---------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if self.select is not None and rule not in self.select:
            return
        pragma, _ = ALL_RULES[rule]
        if is_suppressed(
            node, pragma, self.pragmas, self.comment_lines,
            self.decorator_lines,
        ):
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    # -- call-site rules -----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_repro:
            self._check_open(node)
            self._check_write_method(node)
            self._check_json_dump(node)
            self._check_rename(node)
            self._check_suppress(node)
        self.generic_visit(node)

    def _check_open(self, node: ast.Call) -> None:
        # Builtin open() only: a bare Name — os.open / gzip.open etc.
        # are attribute calls with different semantics.
        if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
            return
        mode = _open_mode(node)
        # RPL017: writing modes outside the sanctioned writers.  "a" is
        # exempt (append-by-design logs); a dynamic mode expression is
        # not flagged.
        if (
            not self.sanctioned_writer
            and mode is not None
            and any(ch in mode for ch in "wx+")
        ):
            self._report(
                node,
                "RPL017",
                f"raw open(..., {mode!r}) in src/repro: a crash mid-"
                "write tears the artifact; route through "
                "repro.ioutil.atomic_write_text/bytes (append mode is "
                "exempt)",
            )
        # RPL018: text mode must pin encoding=; csv modules also pin
        # newline="".
        binary = mode is not None and "b" in mode
        if binary:
            return
        if _keyword(node, "encoding") is None:
            self._report(
                node,
                "RPL018",
                "open() without encoding= uses the platform-default "
                "codec (cp1252 on Windows mangles non-ASCII); pin "
                "encoding='utf-8'",
            )
        if self.uses_csv and _keyword(node, "newline") is None:
            self._report(
                node,
                "RPL018",
                "open() without newline='' in a csv-using module: "
                "newline translation corrupts csv line-ending "
                "discipline; pin newline=''",
            )

    def _check_write_method(self, node: ast.Call) -> None:
        # RPL017 also covers Path.write_text/write_bytes — the same
        # torn-write hazard with a different spelling.  A receiver
        # named ``fs``/``filesystem`` is the injectable
        # :class:`repro.runner.fs.FileSystem` handle, whose write_text
        # is already atomic (it delegates to ioutil).
        if self.sanctioned_writer:
            return
        name = _call_name(node.func)
        if name not in ("write_text", "write_bytes"):
            return
        if not isinstance(node.func, ast.Attribute):
            return
        receiver = _call_name(node.func.value)
        if receiver in ("fs", "filesystem"):
            return
        self._report(
            node,
            "RPL017",
            f".{name}() rewrites the target in place (torn by a crash "
            "mid-write); use repro.ioutil.atomic_write_text/bytes",
        )

    def _check_json_dump(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted not in ("json.dump", "json.dumps"):
            return
        allow_nan = _keyword(node, "allow_nan")
        if (
            isinstance(allow_nan, ast.Constant)
            and allow_nan.value is False
        ):
            return
        self._report(
            node,
            "RPL019",
            f"{dotted}() without allow_nan=False emits non-standard "
            "NaN/Infinity tokens other parsers reject; pass "
            "allow_nan=False or use repro.ioutil.strict_json_dump",
        )

    def _check_rename(self, node: ast.Call) -> None:
        if self.sanctioned_writer:
            return
        dotted = _dotted(node.func)
        if dotted in _RENAME_CALLS:
            self._report(
                node,
                "RPL020",
                f"{dotted}() in src/repro outside repro.ioutil: the "
                "atomic-rename protocol (tmp naming, cleanup on "
                "failure, fault points) is centralised in "
                "ioutil.atomic_write",
            )

    def _check_suppress(self, node: ast.Call) -> None:
        # contextlib.suppress(Exception/BaseException) is the context-
        # manager spelling of a swallow handler.
        if not self.no_swallow:
            return
        name = _call_name(node.func)
        if name != "suppress":
            return
        for arg in node.args:
            exc = _call_name(arg) if isinstance(
                arg, (ast.Name, ast.Attribute)
            ) else ""
            if exc in ("Exception", "BaseException"):
                self._report(
                    node,
                    "RPL021",
                    f"contextlib.suppress({exc}) in an artifact-"
                    "producing module swallows torn-write errors; "
                    "catch the narrow exception you expect",
                )
                return

    # -- import-site rule (RPL020: tempfile) ---------------------------

    def _flag_tempfile(self, node: ast.AST) -> None:
        self._report(
            node,
            "RPL020",
            "tempfile use in src/repro outside repro.ioutil: staging "
            "files for atomic publication goes through "
            "ioutil.atomic_write (tmp siblings, not tempdir files, so "
            "os.replace never crosses filesystems)",
        )

    def visit_Import(self, node: ast.Import) -> None:
        if self.in_repro and not self.sanctioned_writer:
            for alias in node.names:
                if alias.name == "tempfile" or alias.name.startswith(
                    "tempfile."
                ):
                    self._flag_tempfile(node)
                    break
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if (
            self.in_repro
            and not self.sanctioned_writer
            and (node.module or "") == "tempfile"
        ):
            self._flag_tempfile(node)
        self.generic_visit(node)

    # -- RPL021: broad except-and-swallow ------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.no_swallow:
            broad = node.type is None or (
                isinstance(node.type, (ast.Name, ast.Attribute))
                and _call_name(node.type) in ("Exception", "BaseException")
            )
            if broad and _swallow_only_body(node.body):
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {_call_name(node.type)}"
                )
                self._report(
                    node,
                    "RPL021",
                    f"{caught}: pass/continue in an artifact-producing "
                    "module swallows torn-write and checkpoint errors; "
                    "catch the narrow exception or handle it",
                )
        self.generic_visit(node)


def _uses_csv(tree: ast.AST) -> bool:
    """Does this module import the stdlib csv module?"""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "csv" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[0] == "csv":
                return True
    return False


def check_durability_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run pass 4 over one source string; ``path`` drives scoping."""
    chosen = frozenset(select) if select is not None else None
    if chosen is not None and not (chosen & DURABILITY_RULES):
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        # Pass 1 already reports RPL000 for unparseable files.
        return []
    pragmas, comment_lines = _pragmas_by_line(source)
    checker = _DurabilityChecker(
        path,
        pragmas,
        comment_lines,
        select=chosen,
        decorator_lines=decorator_lines_of(tree),
        uses_csv=_uses_csv(tree),
    )
    checker.visit(tree)
    return sorted(checker.findings, key=lambda f: (f.line, f.col, f.rule))


def check_durability_file(
    path: str, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run pass 4 over one file from disk."""
    text = Path(path).read_text(encoding="utf-8")
    return check_durability_source(text, path=str(path), select=select)


def check_durability_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run pass 4 over every ``.py`` file under ``paths``."""
    findings: List[Finding] = []
    chosen = frozenset(select) if select is not None else None
    for path in iter_python_files(paths):
        findings.extend(check_durability_file(path, select=chosen))
    return findings
