"""Concurrency-safety analysis pass (pass 3) for reprolint.

The shared-memory parallel layer (``src/repro/parallel/``, PR 6) is
correct only while a handful of conventions hold: workers are forked,
dispatched callables are picklable module-level functions, attached
shared-memory views stay read-only, segment ownership is confined to
one module, and nothing worker-reachable mutates fork-snapshotted
globals or spawns threads.  None of that is visible to mypy or to the
per-file pass.  This pass makes the conventions machine-checked.

It reuses pass 2's project symbol table (:class:`~tools.reprolint.
crossmod.Project`) and builds a **worker-reachability call graph**:

1. *Dispatch roots* — every callable that crosses a process boundary:
   the first argument of ``submit``/``map``/``starmap``/``imap``/
   ``apply_async``-style calls, plus ``initializer=``/``target=``
   keywords of pool/process constructors.
2. *Reachable functions* — the transitive closure of statically
   resolvable calls from those roots, across modules (imports are
   followed through the symbol table; attribute calls resolve through
   imported module aliases and project-local classes).
3. *Reachable modules* — the modules containing reachable functions,
   plus their transitive ``repro.*`` imports (a forked worker inherits
   every imported module's state, not just the functions it calls).

Rules checked over that graph:

``RPL012``
    A dispatched callable must be an importable module-level function.
    Lambdas, locally-defined closures, and bound methods either fail to
    pickle outright or — worse, under ``fork`` — silently capture
    parent state that diverges from the worker's.

``RPL013``
    Worker-reachable code must not write to arrays derived from
    ``attach_pack``/``attach_csd``.  The attached views are
    deliberately ``writeable=False``; a write would be a torn,
    unsynchronised mutation of memory shared by every worker.  Item
    and slice assignment, augmented assignment, ``out=`` keywords, and
    in-place ndarray methods (``fill``/``sort``/``put``/…) on tainted
    values are findings, as is re-enabling ``writeable``.  Taint is
    tracked intra-procedurally and propagated through call arguments
    into resolved callees' parameters.

``RPL014``
    ``shared_memory.SharedMemory`` construction and
    ``resource_tracker``/``unregister`` calls are confined to
    ``repro/parallel/shm.py`` — segment lifecycle has exactly one
    owner.  Within ``shm.py``, every ``create=True`` site must be
    structurally paired with an unlink path: lexically inside a
    ``try`` whose handler/finally calls an ``unlink``-named cleanup,
    or in a class that defines ``unlink``/``__exit__``.

``RPL015``
    Worker-reachable code must not mutate module-level mutable state
    (``global`` rebinding, subscript/augmented assignment, or mutating
    method calls on module-level containers).  ``fork`` snapshots
    globals at pool start; parent and worker then diverge silently.
    ``repro/parallel/shm.py`` is exempt — its per-process attachment
    cache *is* the sanctioned worker-side state, and the leak-gate
    fixture asserts its lifecycle.

``RPL016``
    No ``threading`` primitives or ``ThreadPoolExecutor`` in
    worker-reachable modules.  A lock held by another parent thread at
    ``fork`` time is copied locked into the child and deadlocks it;
    threads themselves are never replicated by fork.  Vetted sites
    (e.g. a registry lock guarding short pure-Python sections in a
    package that spawns no threads) carry ``# reprolint: allow-thread``
    with a justification.

Like passes 1 and 2, everything is stdlib-``ast`` and purely syntactic;
``# reprolint: allow-<name>`` pragmas suppress individual findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.crossmod import FunctionInfo, ModuleInfo, Project
from tools.reprolint.rules import (
    ALL_RULES,
    Finding,
    _call_name,
    _dotted,
    is_suppressed,
)

__all__ = [
    "DISPATCH_METHODS",
    "DISPATCH_KEYWORDS",
    "SHM_OWNER_MODULE",
    "check_concurrency",
]

#: Method names whose first positional argument is dispatched to a
#: worker process (``executor.submit(fn, ...)``, ``pool.map(fn, it)``).
DISPATCH_METHODS: FrozenSet[str] = frozenset(
    {
        "submit",
        "map",
        "starmap",
        "starmap_async",
        "imap",
        "imap_unordered",
        "apply",
        "apply_async",
        "map_async",
    }
)

#: Keyword arguments that carry a callable across the process boundary
#: on pool/process constructors.
DISPATCH_KEYWORDS: FrozenSet[str] = frozenset({"initializer", "target"})

#: Constructors whose ``map``/``submit`` methods stay in-process —
#: their dispatch sites are *not* process boundaries.  (``Thread``/
#: ``ThreadPoolExecutor`` targets never cross a pickle boundary, and
#: RPL016 polices their presence separately.)
_IN_PROCESS_POOLS: FrozenSet[str] = frozenset({"ThreadPoolExecutor", "ThreadPool"})

#: The one module allowed to construct/unlink shared-memory segments.
SHM_OWNER_MODULE = "repro.parallel.shm"

#: Modules whose module-level mutable state is the *sanctioned*
#: per-process worker cache (RPL015 exempt; the session leak gate in
#: tests/conftest.py asserts its lifecycle instead).
_RPL015_EXEMPT_MODULES: FrozenSet[str] = frozenset({SHM_OWNER_MODULE})

#: Functions whose return value is an attached shared-memory view (the
#: RPL013 taint sources).
_ATTACH_FUNCS: FrozenSet[str] = frozenset({"attach_pack", "attach_csd"})

#: ndarray methods that mutate in place.
_INPLACE_NDARRAY_METHODS: FrozenSet[str] = frozenset(
    {
        "fill",
        "sort",
        "partition",
        "put",
        "itemset",
        "resize",
        "setfield",
        "byteswap",
        "setflags",
    }
)

#: threading-module callables that are fork hazards when constructed in
#: a worker-reachable module (locks copy their held state into the
#: child; threads silently vanish).
_THREADING_PRIMITIVES: FrozenSet[str] = frozenset(
    {
        "Thread",
        "Timer",
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "local",
    }
)


# ---------------------------------------------------------------------------
# symbol resolution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Symbol:
    """What a module-level name in one module resolves to."""

    kind: str  # "func" | "class" | "module" | "external"
    #: for "func": the FunctionInfo; for "class": the ClassDef node's
    #: module + name; for "module": the dotted target module.
    target: object = None


@dataclass
class _ModuleSymbols:
    """Module-level binding table for one project module."""

    info: ModuleInfo
    #: name -> _Symbol
    names: Dict[str, _Symbol] = field(default_factory=dict)
    #: class name -> {method name -> FunctionInfo}
    classes: Dict[str, Dict[str, FunctionInfo]] = field(default_factory=dict)
    #: dotted repro modules imported (for the RPL016 module closure).
    repro_imports: Set[str] = field(default_factory=set)


def _index_project(project: Project) -> Dict[str, _ModuleSymbols]:
    """Build per-module symbol tables over the pass-2 project."""
    # Top-level (non-nested) functions and methods, keyed for lookup.
    toplevel: Dict[Tuple[str, str], FunctionInfo] = {}
    methods: Dict[Tuple[str, str], Dict[str, FunctionInfo]] = {}
    for fn in project.functions:
        if "<locals>" in fn.qualname:
            continue
        if "." not in fn.qualname:
            toplevel[(fn.module, fn.qualname)] = fn
        else:
            cls, _, meth = fn.qualname.rpartition(".")
            if "." not in cls:  # one nesting level: a class method
                methods.setdefault((fn.module, cls), {})[meth] = fn

    tables: Dict[str, _ModuleSymbols] = {}
    for dotted, info in project.modules.items():
        table = _ModuleSymbols(info=info)
        for (mod, cls), meths in methods.items():
            if mod == dotted:
                table.classes[cls] = meths
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = toplevel.get((dotted, node.name))
                if fn is not None:
                    table.names[node.name] = _Symbol("func", fn)
            elif isinstance(node, ast.ClassDef):
                table.names[node.name] = _Symbol("class", (dotted, node.name))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    table.names[bound] = _Symbol("module", target)
                    if alias.name.startswith("repro"):
                        table.repro_imports.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                src = node.module or ""
                if node.level:
                    # Relative import: anchor at the importing package.
                    base = dotted.split(".")
                    if info.path.endswith("__init__.py"):
                        base = base[: len(base) - node.level + 1]
                    else:
                        base = base[: len(base) - node.level]
                    src = ".".join(base + ([src] if src else []))
                if src.startswith("repro"):
                    table.repro_imports.add(src)
                for alias in node.names:
                    bound = alias.asname or alias.name
                    table.names[bound] = _Symbol(
                        "import_from", (src, alias.name)
                    )
        tables[dotted] = table
    return tables


class _Resolver:
    """Resolve names/attribute chains to project functions."""

    def __init__(self, tables: Dict[str, _ModuleSymbols]) -> None:
        self.tables = tables

    def resolve_name(
        self, module: str, name: str, _depth: int = 0
    ) -> Optional[_Symbol]:
        """Follow a module-level name to its defining symbol."""
        if _depth > 16:  # re-export cycles
            return None
        table = self.tables.get(module)
        if table is None:
            return None
        sym = table.names.get(name)
        if sym is None:
            return None
        if sym.kind == "import_from":
            src, orig = sym.target  # type: ignore[misc]
            # ``from repro.x import y`` binds either a symbol of
            # repro.x or the submodule repro.x.y.
            resolved = self.resolve_name(src, orig, _depth + 1)
            if resolved is not None:
                return resolved
            if f"{src}.{orig}" in self.tables:
                return _Symbol("module", f"{src}.{orig}")
            return _Symbol("external")
        return sym

    def resolve_callable(
        self, module: str, node: ast.expr
    ) -> Tuple[str, Optional[FunctionInfo]]:
        """Classify a dispatched-callable expression.

        Returns ``(kind, fn)`` where kind is one of ``"func"`` (a
        module-level project function, fn set), ``"lambda"``,
        ``"local"`` (nested def / closure), ``"bound"`` (attribute on
        an instance), or ``"opaque"`` (unresolvable: builtin, external
        library, or a variable — pass 3 gives it the benefit of the
        doubt).
        """
        if isinstance(node, ast.Lambda):
            return "lambda", None
        if isinstance(node, ast.Call) and _call_name(node.func) == "partial":
            if node.args:
                return self.resolve_callable(module, node.args[0])
            return "opaque", None
        if isinstance(node, ast.Name):
            sym = self.resolve_name(module, node.id)
            if sym is None:
                return "opaque", None
            if sym.kind == "func":
                return "func", sym.target  # type: ignore[return-value]
            return "opaque", None
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                sym = self.resolve_name(module, base.id)
                if sym is not None and sym.kind == "module":
                    target_mod = sym.target  # type: ignore[assignment]
                    inner = self.resolve_name(str(target_mod), node.attr)
                    if inner is not None and inner.kind == "func":
                        return "func", inner.target  # type: ignore[return-value]
                    return "opaque", None
                if sym is not None and sym.kind == "class":
                    cls_mod, cls_name = sym.target  # type: ignore[misc]
                    table = self.tables.get(cls_mod)
                    if table is not None:
                        meth = table.classes.get(cls_name, {}).get(node.attr)
                        if meth is not None:
                            # classmethod/staticmethod access via the
                            # class is importable; flag via RPL012 only
                            # when plainly an instance attribute.
                            return "func", meth
                    return "opaque", None
            return "bound", None
        return "opaque", None

    def resolve_call_target(
        self, module: str, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """Resolve a call inside a function body to a project function
        (module-level function, imported function, ``mod.fn``,
        ``Class(...)``'s ``__init__``, or ``Class.method``)."""
        func = call.func
        if isinstance(func, ast.Name):
            sym = self.resolve_name(module, func.id)
            if sym is None:
                return None
            if sym.kind == "func":
                return sym.target  # type: ignore[return-value]
            if sym.kind == "class":
                cls_mod, cls_name = sym.target  # type: ignore[misc]
                table = self.tables.get(cls_mod)
                if table is not None:
                    return table.classes.get(cls_name, {}).get("__init__")
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            sym = self.resolve_name(module, func.value.id)
            if sym is None:
                return None
            if sym.kind == "module":
                inner = self.resolve_name(str(sym.target), func.attr)
                if inner is not None and inner.kind == "func":
                    return inner.target  # type: ignore[return-value]
                if inner is not None and inner.kind == "class":
                    cls_mod, cls_name = inner.target  # type: ignore[misc]
                    table = self.tables.get(cls_mod)
                    if table is not None:
                        return table.classes.get(cls_name, {}).get("__init__")
                return None
            if sym.kind == "class":
                cls_mod, cls_name = sym.target  # type: ignore[misc]
                table = self.tables.get(cls_mod)
                if table is not None:
                    return table.classes.get(cls_name, {}).get(func.attr)
        return None


# ---------------------------------------------------------------------------
# dispatch-site discovery (RPL012 roots)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _DispatchSite:
    """One callable crossing a process boundary."""

    info: ModuleInfo
    call: ast.Call
    callable_expr: ast.expr
    #: 0-based index of the first worker-bound payload argument (after
    #: the callable), used to seed RPL013 taint at the boundary.
    arg_offset: int
    #: Innermost function containing the dispatch call (None at module
    #: level); a dispatched Name defined as a ``def`` inside it is a
    #: closure, not an importable module-level function.
    owner: Optional[ast.AST] = None


def _defines_local_function(owner: ast.AST, name: str) -> bool:
    """Does ``owner`` (a function) contain a nested ``def name``?"""
    for node in ast.walk(owner):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not owner
            and node.name == name
        ):
            return True
    return False


def _enclosing_function_map(info: ModuleInfo) -> Dict[int, ast.AST]:
    """Map each Call node id to its innermost enclosing function."""
    out: Dict[int, ast.AST] = {}

    def walk(node: ast.AST, owner: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            next_owner = owner
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                next_owner = child
            if isinstance(child, ast.Call) and owner is not None:
                out[id(child)] = owner
            walk(child, next_owner)

    walk(info.tree, None)
    return out


def _iter_dispatch_sites(info: ModuleInfo) -> Iterable[_DispatchSite]:
    owners = _enclosing_function_map(info)
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        owner = owners.get(id(node))
        name = _call_name(node.func)
        if (
            name in DISPATCH_METHODS
            and isinstance(node.func, ast.Attribute)
            and node.args
        ):
            yield _DispatchSite(info, node, node.args[0], arg_offset=1, owner=owner)
        if name in _IN_PROCESS_POOLS:
            continue
        for kw in node.keywords:
            if kw.arg in DISPATCH_KEYWORDS:
                yield _DispatchSite(info, node, kw.value, arg_offset=0, owner=owner)


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------


class _Pass3:
    def __init__(self, project: Project, select: Optional[FrozenSet[str]]) -> None:
        self.project = project
        self.select = select
        self.tables = _index_project(project)
        self.resolver = _Resolver(self.tables)
        self.findings: List[Finding] = []
        #: FunctionInfo id -> FunctionInfo for the worker-reachable set.
        self.reachable: Dict[int, FunctionInfo] = {}
        #: FunctionInfo id -> set of tainted parameter names (RPL013).
        self.tainted_params: Dict[int, Set[str]] = {}

    # -- bookkeeping ---------------------------------------------------

    def _report(
        self, info: ModuleInfo, node: ast.AST, rule: str, message: str
    ) -> None:
        if self.select is not None and rule not in self.select:
            return
        pragma, _ = ALL_RULES[rule]
        if is_suppressed(
            node, pragma, info.pragmas, info.comment_lines, info.decorator_lines
        ):
            return
        self.findings.append(
            Finding(
                path=info.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    # -- RPL012 + reachability seeding ---------------------------------

    def check_dispatch_sites(self) -> List[FunctionInfo]:
        roots: List[FunctionInfo] = []
        for info in self.project.modules.values():
            for site in _iter_dispatch_sites(info):
                kind, fn = self.resolver.resolve_callable(
                    info.module, site.callable_expr
                )
                # A dispatched Name defined by a ``def`` nested in the
                # dispatching function shadows any module-level binding:
                # it is a closure, whatever the symbol table says.
                if (
                    kind in ("func", "opaque")
                    and isinstance(site.callable_expr, ast.Name)
                    and site.owner is not None
                    and _defines_local_function(
                        site.owner, site.callable_expr.id
                    )
                ):
                    self._report(
                        info,
                        site.call,
                        "RPL012",
                        f"locally-defined function "
                        f"{site.callable_expr.id!r} dispatched to a "
                        "worker process; closures do not pickle and "
                        "capture fork-stale parent state — hoist it to "
                        "module level",
                    )
                    continue
                if kind == "lambda":
                    self._report(
                        info,
                        site.call,
                        "RPL012",
                        "lambda dispatched to a worker process; lambdas "
                        "do not pickle — dispatch an importable "
                        "module-level function",
                    )
                elif kind == "bound":
                    self._report(
                        info,
                        site.call,
                        "RPL012",
                        f"bound method {_dotted(site.callable_expr) or '<attribute>'!s} "
                        "dispatched to a worker process; the pickled "
                        "instance (or fork-captured self) diverges from "
                        "the parent — dispatch a module-level function "
                        "taking explicit arguments",
                    )
                elif kind == "func" and fn is not None:
                    if "<locals>" in fn.qualname:
                        self._report(
                            info,
                            site.call,
                            "RPL012",
                            f"locally-defined function {fn.qualname!r} "
                            "dispatched to a worker process; closures do "
                            "not pickle and capture fork-stale parent "
                            "state — hoist it to module level",
                        )
                    elif "." in fn.qualname:
                        self._report(
                            info,
                            site.call,
                            "RPL012",
                            f"method {fn.qualname!r} dispatched to a "
                            "worker process; dispatch a module-level "
                            "function so the callable is importable by "
                            "qualified name",
                        )
                    else:
                        roots.append(fn)
                        self._seed_dispatch_taint(info, site, fn)
        return roots

    def _seed_dispatch_taint(
        self, info: ModuleInfo, site: _DispatchSite, fn: FunctionInfo
    ) -> None:
        """Taint worker-function parameters bound to attach results at
        the dispatch site (rare, but ``submit(fn, attach_pack(h))`` is
        exactly the aliasing RPL013 exists for)."""
        params = _positional_params(fn.node)
        for i, arg in enumerate(site.call.args[site.arg_offset :]):
            if (
                isinstance(arg, ast.Call)
                and _call_name(arg.func) in _ATTACH_FUNCS
                and i < len(params)
            ):
                self.tainted_params.setdefault(id(fn), set()).add(params[i])

    # -- reachability --------------------------------------------------

    def compute_reachable(self, roots: Sequence[FunctionInfo]) -> None:
        queue = list(roots)
        for fn in queue:
            self.reachable[id(fn)] = fn
        while queue:
            fn = queue.pop()
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                callee = self.resolver.resolve_call_target(fn.module, call)
                if callee is not None and id(callee) not in self.reachable:
                    self.reachable[id(callee)] = callee
                    queue.append(callee)

    def reachable_modules(self) -> Dict[str, str]:
        """Worker-reachable modules and why: ``{dotted: reason}``.

        Contains every module defining a reachable function plus the
        transitive ``repro.*`` import closure — a forked worker
        inherits all of it.
        """
        out: Dict[str, str] = {}
        queue: List[Tuple[str, str]] = []
        for fn in self.reachable.values():
            if fn.module not in out:
                out[fn.module] = f"defines worker-reachable {fn.qualname}()"
                queue.append((fn.module, fn.module))
        while queue:
            dotted, root = queue.pop()
            table = self.tables.get(dotted)
            if table is None:
                continue
            for imported in sorted(table.repro_imports):
                if imported in out or imported not in self.tables:
                    continue
                out[imported] = f"imported (transitively) by {root}"
                queue.append((imported, root))
        return out

    # -- RPL013: no writes through attached views ----------------------

    def check_attached_writes(self) -> None:
        # Fixpoint: inter-procedural taint through call arguments can
        # unlock new tainted params, which can unlock further calls.
        for _ in range(8):
            changed = False
            for fn in list(self.reachable.values()):
                if self._taint_function(fn):
                    changed = True
            if not changed:
                break
        for fn in self.reachable.values():
            self._report_tainted_writes(fn)

    def _taint_function(self, fn: FunctionInfo) -> bool:
        """Propagate taint out of ``fn`` into callee params; returns
        True when any new parameter became tainted."""
        tainted = self._local_taint(fn)
        changed = False
        for call in ast.walk(fn.node):
            if not isinstance(call, ast.Call):
                continue
            callee = self.resolver.resolve_call_target(fn.module, call)
            if callee is None or id(callee) not in self.reachable:
                continue
            params = _positional_params(callee.node)
            skip_self = bool(params) and params[0] == "self"
            base = 1 if skip_self else 0
            for i, arg in enumerate(call.args):
                if base + i >= len(params):
                    break
                if self._expr_tainted(arg, tainted):
                    bucket = self.tainted_params.setdefault(id(callee), set())
                    if params[base + i] not in bucket:
                        bucket.add(params[base + i])
                        changed = True
            for kw in call.keywords:
                if kw.arg and kw.arg in params and self._expr_tainted(
                    kw.value, tainted
                ):
                    bucket = self.tainted_params.setdefault(id(callee), set())
                    if kw.arg not in bucket:
                        bucket.add(kw.arg)
                        changed = True
        return changed

    def _local_taint(self, fn: FunctionInfo) -> Set[str]:
        """Names bound to attach-derived values inside ``fn``."""
        tainted: Set[str] = set(self.tainted_params.get(id(fn), set()))
        # Two sweeps catch forward references through simple chains.
        for _ in range(2):
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    if self._expr_tainted(node.value, tainted):
                        for target in node.targets:
                            for name in _target_names(target):
                                tainted.add(name)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if self._expr_tainted(node.value, tainted):
                        tainted.update(_target_names(node.target))
        return tainted

    def _expr_tainted(self, node: ast.expr, tainted: Set[str]) -> bool:
        """Is this expression (a chain over) an attached view?"""
        if isinstance(node, ast.Call):
            return _call_name(node.func) in _ATTACH_FUNCS
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
            return self._expr_tainted(node.value, tainted)
        return False

    def _report_tainted_writes(self, fn: FunctionInfo) -> None:
        info = self.project.modules[fn.module]
        tainted = self._local_taint(fn)
        if not tainted:
            return
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and self._expr_tainted(
                        target.value, tainted
                    ):
                        self._report(
                            info,
                            node,
                            "RPL013",
                            "item/slice assignment into an attached "
                            "shared-memory view in worker-reachable code; "
                            "attached views are read-only by contract — "
                            "copy before mutating",
                        )
                    elif (
                        isinstance(target, ast.Attribute)
                        and target.attr == "writeable"
                        and self._expr_tainted(target.value, tainted)
                        and isinstance(node.value, ast.Constant)
                        and node.value.value is True
                    ):
                        self._report(
                            info,
                            node,
                            "RPL013",
                            "re-enabling writeable on an attached "
                            "shared-memory view in worker-reachable code "
                            "defeats the read-only contract",
                        )
            elif isinstance(node, ast.AugAssign):
                target = node.target
                base = target.value if isinstance(
                    target, (ast.Subscript, ast.Attribute)
                ) else target
                if self._expr_tainted(base, tainted):
                    self._report(
                        info,
                        node,
                        "RPL013",
                        "augmented assignment mutates an attached "
                        "shared-memory view in worker-reachable code; "
                        "attached views are read-only by contract",
                    )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "out" and self._expr_tainted(kw.value, tainted):
                        self._report(
                            info,
                            node,
                            "RPL013",
                            "out= targets an attached shared-memory view "
                            "in worker-reachable code; in-place numpy "
                            "output into a shared view is a torn write",
                        )
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _INPLACE_NDARRAY_METHODS
                    and self._expr_tainted(node.func.value, tainted)
                ):
                    self._report(
                        info,
                        node,
                        "RPL013",
                        f".{node.func.attr}() mutates an attached "
                        "shared-memory view in place in worker-reachable "
                        "code; attached views are read-only by contract",
                    )

    # -- RPL014: segment lifecycle confined to shm.py ------------------

    def check_shm_confinement(self) -> None:
        for info in self.project.modules.values():
            in_owner = info.module == SHM_OWNER_MODULE
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Call):
                    name = _call_name(node.func)
                    dotted = _dotted(node.func)
                    if name == "SharedMemory":
                        if not in_owner:
                            self._report(
                                info,
                                node,
                                "RPL014",
                                "shared_memory.SharedMemory constructed "
                                f"outside {SHM_OWNER_MODULE}; segment "
                                "lifecycle (create/unlink pairing, atexit "
                                "sweep, leak accounting) has exactly one "
                                "owner — export through repro.parallel",
                            )
                        elif _has_create_true(node) and not self._create_paired(
                            info, node
                        ):
                            self._report(
                                info,
                                node,
                                "RPL014",
                                "SharedMemory(create=True) site is not "
                                "structurally paired with an unlink path "
                                "(no enclosing try handler/finally calling "
                                "an unlink, and the enclosing class "
                                "defines no unlink()) — a failure here "
                                "leaks the segment",
                            )
                    if name == "unregister" and "resource_tracker" in dotted:
                        if not in_owner:
                            self._report(
                                info,
                                node,
                                "RPL014",
                                "resource_tracker.unregister outside "
                                f"{SHM_OWNER_MODULE}; tracker bookkeeping "
                                "belongs to the segment owner — a stray "
                                "unregister erases the parent's own "
                                "registration",
                            )
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    if in_owner:
                        continue
                    modules = (
                        [a.name for a in node.names]
                        if isinstance(node, ast.Import)
                        else [node.module or ""]
                    )
                    names = (
                        [a.name for a in node.names]
                        if isinstance(node, ast.ImportFrom)
                        else []
                    )
                    if any(
                        m.endswith("resource_tracker") for m in modules
                    ) or "resource_tracker" in names:
                        self._report(
                            info,
                            node,
                            "RPL014",
                            "resource_tracker imported outside "
                            f"{SHM_OWNER_MODULE}; tracker bookkeeping "
                            "belongs to the segment owner",
                        )

    def _create_paired(self, info: ModuleInfo, create: ast.Call) -> bool:
        """Is a ``create=True`` site structurally paired with unlink?

        True when the call is lexically inside a ``try`` whose handlers
        or ``finally`` call an ``unlink``-named cleanup, or inside a
        class that defines an ``unlink`` (or ``_unlink*``) method or
        ``__exit__``.
        """
        path = _ancestors(info.tree, create)
        for node in path:
            if isinstance(node, ast.Try):
                cleanup_bodies: List[Sequence[ast.stmt]] = [
                    handler.body for handler in node.handlers
                ]
                cleanup_bodies.append(node.finalbody)
                for body in cleanup_bodies:
                    for stmt in body:
                        for sub in ast.walk(stmt):
                            if isinstance(sub, ast.Call) and "unlink" in _call_name(
                                sub.func
                            ):
                                return True
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and ("unlink" in stmt.name or stmt.name == "__exit__"):
                        return True
            elif isinstance(node, ast.With):
                for item in node.items:
                    if item.context_expr is create:
                        return True
        return False

    # -- RPL015: no fork-divergent global mutation ---------------------

    def check_global_mutation(self) -> None:
        for fn in self.reachable.values():
            if fn.module in _RPL015_EXEMPT_MODULES:
                continue
            info = self.project.modules[fn.module]
            mutable_globals = self._module_mutable_globals(info)
            local_names = _assigned_locals(fn.node)
            declared_global: Set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        name = _mutation_base_name(target)
                        if name is None:
                            continue
                        rebind = isinstance(target, ast.Name)
                        if rebind and name in declared_global:
                            self._report(
                                info,
                                node,
                                "RPL015",
                                f"worker-reachable {fn.qualname}() rebinds "
                                f"module global {name!r}; fork snapshots "
                                "globals at pool start, so parent and "
                                "worker silently diverge — pass state "
                                "explicitly or keep it per-call",
                            )
                        elif (
                            not rebind
                            and name in mutable_globals
                            and name not in local_names
                        ):
                            self._report(
                                info,
                                node,
                                "RPL015",
                                f"worker-reachable {fn.qualname}() mutates "
                                f"module-level mutable {name!r}; the "
                                "worker's copy diverges from the parent's "
                                "after fork — pass state explicitly",
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATING_CONTAINER_METHODS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in mutable_globals
                        and func.value.id not in local_names
                    ):
                        self._report(
                            info,
                            node,
                            "RPL015",
                            f"worker-reachable {fn.qualname}() calls "
                            f"{func.value.id}.{func.attr}() on "
                            "module-level mutable state; the worker's "
                            "copy diverges from the parent's after fork",
                        )

    def _module_mutable_globals(self, info: ModuleInfo) -> FrozenSet[str]:
        out: Set[str] = set()
        for node in info.tree.body:
            target: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
                node.targets[0], ast.Name
            ):
                target, value = node.targets[0].id, node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                target, value = node.target.id, node.value
            if target is None or value is None:
                continue
            if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                  ast.DictComp, ast.SetComp)):
                out.add(target)
            elif isinstance(value, ast.Call) and _call_name(value.func) in (
                "list", "dict", "set", "bytearray", "defaultdict", "Counter",
                "deque", "OrderedDict",
            ):
                out.add(target)
        return frozenset(out)

    # -- RPL016: no threads in worker-reachable modules ----------------

    def check_threading(self) -> None:
        modules = self.reachable_modules()
        for dotted, reason in modules.items():
            info = self.project.modules.get(dotted)
            if info is None:
                continue
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Call):
                    name = _call_name(node.func)
                    dotted_call = _dotted(node.func)
                    is_threading_call = (
                        dotted_call.startswith("threading.")
                        and name in _THREADING_PRIMITIVES
                    )
                    table = self.tables.get(dotted)
                    imported_primitive = False
                    if (
                        table is not None
                        and isinstance(node.func, ast.Name)
                        and name in _THREADING_PRIMITIVES
                    ):
                        sym = table.names.get(name)
                        imported_primitive = (
                            sym is not None
                            and sym.kind == "import_from"
                            and sym.target[0] == "threading"  # type: ignore[index]
                        )
                    if is_threading_call or imported_primitive:
                        self._report(
                            info,
                            node,
                            "RPL016",
                            f"threading.{name}() in worker-reachable "
                            f"module {dotted} ({reason}); a lock held by "
                            "another thread at fork time is copied locked "
                            "into the worker and deadlocks it — vetted "
                            "sites carry '# reprolint: allow-thread'",
                        )
                    elif name == "ThreadPoolExecutor":
                        self._report(
                            info,
                            node,
                            "RPL016",
                            f"ThreadPoolExecutor in worker-reachable "
                            f"module {dotted} ({reason}); threads + fork "
                            "deadlock — use the repro.parallel process "
                            "pool",
                        )
                elif isinstance(node, ast.ImportFrom):
                    if node.module == "concurrent.futures":
                        for alias in node.names:
                            if alias.name == "ThreadPoolExecutor":
                                self._report(
                                    info,
                                    node,
                                    "RPL016",
                                    "ThreadPoolExecutor imported in "
                                    f"worker-reachable module {dotted} "
                                    f"({reason}); threads + fork deadlock",
                                )


_MUTATING_CONTAINER_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
        "appendleft",
        "extendleft",
    }
)


def _positional_params(node: ast.AST) -> List[str]:
    args = node.args  # type: ignore[attr-defined]
    return [a.arg for a in args.posonlyargs + args.args]


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for element in target.elts:
            out.extend(_target_names(element))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _assigned_locals(fn_node: ast.AST) -> FrozenSet[str]:
    """Names bound locally inside a function (params + plain assigns),
    used to ignore shadowing of module globals."""
    out: Set[str] = set(_positional_params(fn_node))
    args = fn_node.args  # type: ignore[attr-defined]
    out.update(a.arg for a in args.kwonlyargs)
    if args.vararg:
        out.add(args.vararg.arg)
    if args.kwarg:
        out.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                out.update(_target_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            out.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    out.update(_target_names(item.optional_vars))
    return frozenset(out - declared_global)


def _mutation_base_name(target: ast.expr) -> Optional[str]:
    """The root Name of an assignment target (``x`` for ``x[0] = ...``,
    ``x.y += ...``, or plain ``x = ...``)."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _has_create_true(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _ancestors(tree: ast.AST, needle: ast.AST) -> List[ast.AST]:
    """Ancestor chain of ``needle`` in ``tree`` (innermost last)."""
    path: List[ast.AST] = []

    def walk(node: ast.AST, trail: List[ast.AST]) -> bool:
        if node is needle:
            path.extend(trail)
            return True
        for child in ast.iter_child_nodes(node):
            if walk(child, trail + [node]):
                return True
        return False

    walk(tree, [])
    return path


def check_concurrency(
    project: Project, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run the concurrency-safety pass (RPL012–RPL016) over ``project``."""
    chosen = frozenset(select) if select is not None else None
    checker = _Pass3(project, chosen)
    roots = checker.check_dispatch_sites()
    checker.compute_reachable(roots)
    checker.check_attached_writes()
    checker.check_shm_confinement()
    checker.check_global_mutation()
    checker.check_threading()
    return sorted(
        checker.findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )
