"""CI smoke test: the `repro stream` CLI end to end, with resume.

Simulates a small corpus, withholds 10% of the POIs for online
discovery, injects malformed trip rows, then

1. streams the whole input in one uninterrupted invocation (the
   reference),
2. streams the same input in two legs (``--max-epochs`` then
   ``--resume``) in a fresh run directory,
3. asserts the two runs committed bit-identical manifests (same
   diagram SHA-256, same live-window epoch digests, same cursors),
4. asserts every malformed row was quarantined exactly once across
   both legs — the resume skip must not re-report rows a committed
   epoch already consumed.

Exit code 0 means the streaming CLI, resume, and quarantine contracts
hold.  The quarantine file is left at ``<workdir>/run-legs/
quarantine.csv`` for CI to upload as a build artifact.

Usage::

    PYTHONPATH=src python tools/stream_smoke.py --out /tmp/stream_smoke
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List

from repro.cli import main as cli_main
from repro.data.io import read_pois, write_pois
from repro.runner import parse_stream_manifest
from repro.runner.stream import STREAM_MANIFEST_NAME

BAD_ROWS = [
    "90001,,bogus,31.0,10.0,121.0,31.0,20.0,Residence,Residence",
    "90002,,121.0,31.0,500.0,121.0,31.0,100.0,Residence,Residence",
    "90003,,121.0,31.0,10.0,121.0,31.0,20.0,Residence",
]


def quarantined_rows(path: Path) -> List[List[str]]:
    if not path.exists():
        return []
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.reader(handle))[1:]  # drop the header


def stream_args(data: Path, run_dir: Path) -> List[str]:
    return [
        "stream",
        "--trips", str(data / "trips.csv"),
        "--csd", str(data / "base_csd.json"),
        "--pois", str(data / "new_pois.csv"),
        "--run-dir", str(run_dir),
        "--epoch-trips", "300",
        "--poi-batch", "40",
        "--window-epochs", "3",
        "--staleness-threshold", "0.01",
        "--support", "8",
    ]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="scratch directory")
    args = parser.parse_args(argv)
    work = Path(args.out)
    work.mkdir(parents=True, exist_ok=True)

    data = work / "data"
    rc = cli_main([
        "simulate", "--out", str(data), "--extent-m", "3000",
        "--pois", "1500", "--passengers", "40", "--days", "3",
        "--seed", "3",
    ])
    if rc != 0:
        print("FAIL: simulate returned", rc)
        return 1

    # 90% of the POIs seed the offline diagram; the rest arrive online.
    pois = read_pois(data / "pois.csv")
    n_base = int(len(pois) * 0.9)
    write_pois(data / "base_pois.csv", pois[:n_base])
    write_pois(data / "new_pois.csv", pois[n_base:])
    rc = cli_main([
        "build-csd", "--pois", str(data / "base_pois.csv"),
        "--trips", str(data / "trips.csv"),
        "--save", str(data / "base_csd.json"),
    ])
    if rc != 0:
        print("FAIL: build-csd returned", rc)
        return 1

    trips_path = data / "trips.csv"
    dirty = trips_path.read_text(encoding="utf-8").rstrip("\n").splitlines()
    dirty[3:3] = BAD_ROWS[:1]  # inside the first epoch
    dirty.extend(BAD_ROWS[1:])  # near the end of the stream
    trips_path.write_text("\n".join(dirty) + "\n", encoding="utf-8")

    run_ref = work / "run-reference"
    if cli_main(stream_args(data, run_ref)) != 0:
        print("FAIL: reference stream run failed")
        return 1

    run_legs = work / "run-legs"
    if cli_main(stream_args(data, run_legs) + ["--max-epochs", "2"]) != 0:
        print("FAIL: first stream leg failed")
        return 1
    if cli_main(stream_args(data, run_legs) + ["--resume"]) != 0:
        print("FAIL: resume stream leg failed")
        return 1

    reference = parse_stream_manifest(
        (run_ref / STREAM_MANIFEST_NAME).read_text(encoding="utf-8")
    )
    resumed = parse_stream_manifest(
        (run_legs / STREAM_MANIFEST_NAME).read_text(encoding="utf-8")
    )
    checks = [
        ("csd_sha256", reference.csd_sha256, resumed.csd_sha256),
        ("trips_consumed", reference.trips_consumed, resumed.trips_consumed),
        ("pois_consumed", reference.pois_consumed, resumed.pois_consumed),
        ("epoch digests",
         [r.sha256 for r in reference.epochs],
         [r.sha256 for r in resumed.epochs]),
    ]
    for name, want, got in checks:
        if want != got:
            print(f"FAIL: resumed {name} differs: {want!r} != {got!r}")
            return 1

    for run_dir in (run_ref, run_legs):
        rows = quarantined_rows(run_dir / "quarantine.csv")
        ids = sorted(row[3].split(",", 1)[0] for row in rows)
        want = sorted(bad.split(",", 1)[0] for bad in BAD_ROWS)
        if ids != want:
            print(f"FAIL: {run_dir.name} quarantined {len(rows)} rows "
                  f"(want each bad row exactly once): {ids!r}")
            return 1

    print(
        f"OK: {reference.epoch_index} epochs bit-identical across the "
        f"two-leg resume; {len(BAD_ROWS)} rows quarantined exactly once "
        f"({run_legs / 'quarantine.csv'})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
