"""Crash-sweep sanitizer: kill the pipeline at *every* write boundary.

``repro.ioutil.atomic_write`` announces three fault points per artifact
write (``tmp-open``, ``tmp-written``, ``replaced`` — see
:data:`repro.ioutil.IO_FAULT_POINTS`).  This harness enumerates every
announcement a deterministic reference run makes — the run's **write
ordinals** — then, for each ordinal, repeats the run in a fresh
directory with a hook that raises
:class:`~repro.runner.fs.SimulatedCrash` at exactly that announcement,
and asserts the durability contract (``docs/DATA_FORMATS.md``):

(a) **no debris** — no ``*.tmp`` file anywhere under the run directory;
(b) **every surviving artifact is intact** — each ``*.json`` present on
    disk parses under :func:`repro.ioutil.strict_json_load`, each
    ``*.csv`` decodes as UTF-8;
(c) **resume is bit-identical** — a plain ``resume=True`` run lands on
    the reference patterns and the reference artifact bytes
    (SHA-256-compared).

Both checkpointed drivers are swept: the batch
:class:`~repro.runner.PipelineRunner` and the epoch-at-a-time
:class:`~repro.runner.StreamRunner`.  This is finer-grained than the
stage-level ``FAULT_POINTS`` crash tests (``tests/test_runner.py``,
``tests/test_stream.py``): those kill the run *between* artifacts,
this harness kills it *inside* every artifact write.

Exit code 0 means every swept ordinal upheld all three invariants.
``--report`` writes a strict-JSON sweep report (CI uploads it as the
``io-sanitize`` job's artifact); ``--fast`` subsamples the ordinals
(always keeping the first and last) for a quick CI smoke.

Usage::

    PYTHONPATH=src python tools/crash_sweep.py --out /tmp/sweep
    PYTHONPATH=src python tools/crash_sweep.py --out /tmp/sweep \
        --fast --report /tmp/sweep/report.json
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import ioutil
from repro.core.config import CSDConfig, MiningConfig
from repro.core.constructor import build_csd
from repro.data.city import CityModel
from repro.data.io import write_pois, write_trips
from repro.data.persistence import save_csd
from repro.data.poi import POIGenerator
from repro.data.taxi import ShanghaiTaxiSimulator
from repro.runner import PipelineRunner, StreamRunner
from repro.runner.fs import SimulatedCrash
from repro.runner.stream import STREAM_MANIFEST_NAME, parse_stream_manifest

CSD_CFG = CSDConfig(alpha=0.7)
MINING_CFG = MiningConfig(support=6, rho=0.001)

STREAM_KW = dict(
    epoch_trips=120,
    poi_batch=80,
    window_epochs=2,
    staleness_threshold=0.01,
)


class SweepFailure(AssertionError):
    """A durability invariant did not hold at a swept write ordinal."""


@dataclass
class SweepResult:
    """Outcome of sweeping one pipeline path."""

    path: str
    ordinals: int
    swept: List[int] = field(default_factory=list)
    checks: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "write_ordinals": self.ordinals,
            "ordinals_swept": self.swept,
            "checks": self.checks,
        }


# -- fault hooks --------------------------------------------------------


class RecordingHook:
    """Record every atomic-write announcement of a reference run."""

    def __init__(self) -> None:
        self.events: List[Tuple[str, str]] = []

    def __call__(self, point: str, target: Path) -> None:
        self.events.append((point, target.name))


class CrashAtOrdinal:
    """Raise :class:`SimulatedCrash` at the k-th announcement."""

    def __init__(self, ordinal: int) -> None:
        self.ordinal = ordinal
        self.count = 0

    def __call__(self, point: str, target: Path) -> None:
        k = self.count
        self.count += 1
        if k == self.ordinal:
            raise SimulatedCrash(
                f"injected crash at write ordinal {k} "
                f"({point} of {target.name})"
            )


# -- durability checks --------------------------------------------------


def check_crash_site(run_dir: Path) -> int:
    """Invariants (a) and (b) over a freshly crashed run directory;
    returns the number of artifacts checked."""
    if not run_dir.exists():
        # Crashed before the run directory was created — trivially
        # debris-free.
        return 0
    debris = sorted(
        str(p.relative_to(run_dir))
        for p in run_dir.rglob(f"*{ioutil.TMP_SUFFIX}")
    )
    if debris:
        raise SweepFailure(f"tmp debris survived the crash: {debris}")
    checks = 0
    for p in sorted(run_dir.rglob("*.json")):
        ioutil.strict_json_load(p)
        checks += 1
    for p in sorted(run_dir.rglob("*.csv")):
        p.read_text(encoding="utf-8")
        checks += 1
    return checks


def artifact_shas(run_dir: Path) -> Dict[str, str]:
    """SHA-256 of every committed artifact under ``run_dir`` (tmp-free
    by invariant (a); ``csd-latest.json`` included — it must track)."""
    return {
        str(p.relative_to(run_dir)): ioutil.file_sha256(p)
        for p in sorted(run_dir.rglob("*"))
        if p.is_file()
    }


def _subsample(n: int, fast: bool) -> List[int]:
    """Ordinals to sweep: all of them, or a fast subsample that always
    keeps the first and last write."""
    if not fast or n <= 8:
        return list(range(n))
    stride = max(1, n // 6)
    picked = sorted(set(range(0, n, stride)) | {0, n - 1})
    return picked


# -- workload -----------------------------------------------------------


@dataclass
class Workload:
    """One deterministic corpus shared by both pipeline paths."""

    pois: list
    trajectories: list
    trips_path: Path
    pois_path: Path
    base_csd_path: Path


def build_workload(root: Path) -> Workload:
    """Small deterministic city/taxi corpus (same generators and seeds
    as the test fixtures, scaled down for per-ordinal repetition)."""
    city = CityModel.generate(extent_m=3_000.0, block_size_m=400.0, seed=3)
    pois = POIGenerator(city, seed=5).generate(1_500)
    corpus = ShanghaiTaxiSimulator(city, seed=9).simulate(
        n_passengers=25, days=2
    )
    trajectories = corpus.mining_trajectories()

    # Stream inputs: base diagram from 90% of the POIs, the rest arrive
    # online; the trips file is the append-only stream.
    n_base = int(len(pois) * 0.9)
    stays = [sp for st in trajectories for sp in st.stay_points]
    base_csd = build_csd(pois[:n_base], stays, CSD_CFG, city.projection)
    root.mkdir(parents=True, exist_ok=True)
    trips_path = root / "trips.csv"
    pois_path = root / "pois.csv"
    base_csd_path = root / "base_csd.json"
    write_trips(trips_path, corpus.trips)
    write_pois(pois_path, pois[n_base:])
    save_csd(base_csd_path, base_csd)
    return Workload(pois, trajectories, trips_path, pois_path, base_csd_path)


# -- batch path ---------------------------------------------------------


def _batch_run(work: Workload, run_dir: Path, resume: bool = False):
    return PipelineRunner(
        run_dir, CSD_CFG, MINING_CFG, resume=resume, chunk_size=2_000
    ).run(work.pois, work.trajectories)


def batch_pattern_key(result) -> List[Tuple[object, ...]]:
    return [
        (
            p.items,
            p.support,
            tuple(p.member_ids),
            tuple((r.lon, r.lat) for r in p.representatives),
        )
        for p in result.patterns
    ]


def sweep_batch(
    work: Workload,
    root: Path,
    *,
    fast: bool = False,
    log: Callable[[str], None] = lambda line: None,
) -> SweepResult:
    recorder = RecordingHook()
    ref_dir = root / "batch-reference"
    with ioutil.fault_hook(recorder):
        reference = _batch_run(work, ref_dir)
    if not reference.patterns:
        raise SweepFailure("workload mined no patterns; sweep is vacuous")
    ref_key = batch_pattern_key(reference)
    ref_shas = artifact_shas(ref_dir)
    result = SweepResult("batch", ordinals=len(recorder.events))
    for k in _subsample(len(recorder.events), fast):
        run_dir = root / f"batch-crash-{k:04d}"
        try:
            with ioutil.fault_hook(CrashAtOrdinal(k)):
                _batch_run(work, run_dir)
            raise SweepFailure(f"crash at write ordinal {k} did not fire")
        except SimulatedCrash:
            pass
        result.checks += check_crash_site(run_dir)
        resumed = _batch_run(work, run_dir, resume=True)
        if batch_pattern_key(resumed) != ref_key:
            raise SweepFailure(
                f"ordinal {k}: resumed patterns differ from reference"
            )
        if artifact_shas(run_dir) != ref_shas:
            raise SweepFailure(
                f"ordinal {k}: resumed artifacts are not bit-identical "
                "to the reference run"
            )
        result.checks += 2
        result.swept.append(k)
        log(
            f"batch ordinal {k}/{result.ordinals - 1}: "
            f"{recorder.events[k][0]} of {recorder.events[k][1]} ok"
        )
    return result


# -- stream path --------------------------------------------------------


def _stream_run(work: Workload, run_dir: Path, resume: bool = False):
    return StreamRunner(
        run_dir,
        work.trips_path,
        base_csd_path=work.base_csd_path,
        pois_path=work.pois_path,
        csd_config=CSD_CFG,
        mining_config=MINING_CFG,
        resume=resume,
        **STREAM_KW,
    ).run()


def stream_state(run_dir: Path, report):
    """Comparable committed state: parsed manifest fields plus the
    bytes (SHA-256) of every manifest-referenced artifact."""
    manifest = parse_stream_manifest(
        (run_dir / STREAM_MANIFEST_NAME).read_text(encoding="utf-8"),
        source=str(run_dir / STREAM_MANIFEST_NAME),
    )
    shas = {
        manifest.csd_artifact: ioutil.file_sha256(
            run_dir / manifest.csd_artifact
        )
    }
    for record in manifest.epochs:
        shas[record.artifact] = ioutil.file_sha256(run_dir / record.artifact)
    patterns = sorted(
        (p.items, p.support, tuple(sorted(p.occurrences)))
        for p in report.patterns
    )
    fields = (
        manifest.csd_sha256,
        manifest.trips_consumed,
        manifest.pois_consumed,
        manifest.next_seq_id,
        manifest.epoch_index,
        tuple(manifest.pending),
        tuple((r.index, r.sha256) for r in manifest.epochs),
    )
    return fields, shas, patterns


def sweep_stream(
    work: Workload,
    root: Path,
    *,
    fast: bool = False,
    log: Callable[[str], None] = lambda line: None,
) -> SweepResult:
    recorder = RecordingHook()
    ref_dir = root / "stream-reference"
    with ioutil.fault_hook(recorder):
        reference = _stream_run(work, ref_dir)
    if reference.epochs_run < 2:
        raise SweepFailure(
            f"stream workload committed only {reference.epochs_run} "
            "epoch(s); sweep needs a multi-epoch run"
        )
    ref_state = stream_state(ref_dir, reference)
    result = SweepResult("stream", ordinals=len(recorder.events))
    for k in _subsample(len(recorder.events), fast):
        run_dir = root / f"stream-crash-{k:04d}"
        try:
            with ioutil.fault_hook(CrashAtOrdinal(k)):
                _stream_run(work, run_dir)
            raise SweepFailure(f"crash at write ordinal {k} did not fire")
        except SimulatedCrash:
            pass
        result.checks += check_crash_site(run_dir)
        resumed_report = _stream_run(work, run_dir, resume=True)
        if stream_state(run_dir, resumed_report) != ref_state:
            raise SweepFailure(
                f"ordinal {k}: resumed stream state differs from the "
                "reference run"
            )
        result.checks += 1
        result.swept.append(k)
        log(
            f"stream ordinal {k}/{result.ordinals - 1}: "
            f"{recorder.events[k][0]} of {recorder.events[k][1]} ok"
        )
    return result


# -- entry point --------------------------------------------------------


def run_sweep(
    root: Path,
    *,
    fast: bool = False,
    paths: Sequence[str] = ("batch", "stream"),
    log: Callable[[str], None] = lambda line: None,
) -> List[SweepResult]:
    work = build_workload(root / "inputs")
    results = []
    if "batch" in paths:
        results.append(sweep_batch(work, root, fast=fast, log=log))
    if "stream" in paths:
        results.append(sweep_stream(work, root, fast=fast, log=log))
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="scratch directory")
    parser.add_argument(
        "--fast",
        action="store_true",
        help="subsample write ordinals (CI smoke; first and last always "
        "swept)",
    )
    parser.add_argument(
        "--path",
        choices=("batch", "stream"),
        action="append",
        dest="paths",
        help="sweep only this pipeline path (repeatable; default: both)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write a strict-JSON sweep report here",
    )
    args = parser.parse_args(argv)
    root = Path(args.out)
    try:
        results = run_sweep(
            root,
            fast=args.fast,
            paths=tuple(args.paths) if args.paths else ("batch", "stream"),
            log=print,
        )
    except SweepFailure as exc:
        print(f"FAIL: {exc}")
        return 1
    document = {
        "schema": 1,
        "fast": bool(args.fast),
        "ok": True,
        "sweeps": [r.to_dict() for r in results],
    }
    if args.report:
        ioutil.strict_json_dump(
            args.report, document, indent=2, trailing_newline=True
        )
    for r in results:
        print(
            f"OK: {r.path} path — {len(r.swept)}/{r.ordinals} write "
            f"ordinals swept, {r.checks} artifact checks"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
