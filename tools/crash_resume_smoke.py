"""CI smoke test: crash the checkpointed pipeline, resume, compare.

Simulates a small corpus, injects malformed rows, then

1. runs the pipeline uninterrupted (the reference),
2. runs in a fresh directory with a :class:`SimulatedCrash` injected
   right after the constructor checkpoint,
3. resumes that run and asserts the patterns are identical to the
   reference,
4. asserts the malformed rows landed in the quarantine file.

Exit code 0 means the crash/resume and quarantine contracts hold.
The quarantine file is left at ``<workdir>/run-crash/quarantine.csv``
for CI to upload as a build artifact.

Usage::

    PYTHONPATH=src python tools/crash_resume_smoke.py --out /tmp/smoke
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Tuple

from repro.cli import main as cli_main
from repro.core.config import CSDConfig, MiningConfig
from repro.core.miner import MiningResult
from repro.data.io import iter_trips, read_pois
from repro.data.taxi import trips_to_mining_trajectories
from repro.runner import (
    FlakyFileSystem,
    PipelineRunner,
    Quarantine,
    SimulatedCrash,
)

BAD_ROWS = [
    "90001,,bogus,31.0,10.0,121.0,31.0,20.0,Residence,Residence",
    "90002,,121.0,31.0,500.0,121.0,31.0,100.0,Residence,Residence",
    "90003,,121.0,31.0,10.0,121.0,31.0,20.0,Residence",
]

PatternKey = List[Tuple[object, ...]]


def pattern_key(result: MiningResult) -> PatternKey:
    return [
        (
            p.items,
            p.support,
            tuple(p.member_ids),
            tuple((r.lon, r.lat) for r in p.representatives),
        )
        for p in result.patterns
    ]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="scratch directory")
    args = parser.parse_args(argv)
    work = Path(args.out)
    work.mkdir(parents=True, exist_ok=True)

    data = work / "data"
    rc = cli_main([
        "simulate", "--out", str(data), "--extent-m", "3000",
        "--pois", "2000", "--passengers", "40", "--days", "3",
    ])
    if rc != 0:
        print("FAIL: simulate returned", rc)
        return 1
    trips_path = data / "trips.csv"
    dirty = trips_path.read_text(encoding="utf-8").rstrip("\n").splitlines()
    dirty[3:3] = BAD_ROWS[:1]
    dirty.extend(BAD_ROWS[1:])
    trips_path.write_text("\n".join(dirty) + "\n", encoding="utf-8")

    pois = read_pois(data / "pois.csv")
    run_crash = work / "run-crash"
    with Quarantine(run_crash / "quarantine.csv") as quarantine:
        trips = list(
            iter_trips(trips_path, on_bad_row=quarantine.sink("trips"))
        )
        quarantined = quarantine.count
    if quarantined != len(BAD_ROWS):
        print(f"FAIL: expected {len(BAD_ROWS)} quarantined rows, "
              f"got {quarantined}")
        return 1
    trajectories = trips_to_mining_trajectories(trips)

    csd_cfg = CSDConfig(alpha=0.7)
    mining_cfg = MiningConfig(support=10, rho=0.001)
    reference = PipelineRunner(
        work / "run-reference", csd_cfg, mining_cfg, chunk_size=1000
    ).run(pois, trajectories)

    crashing = PipelineRunner(
        run_crash, csd_cfg, mining_cfg, chunk_size=1000,
        fs=FlakyFileSystem(crash_points=("after-constructor-checkpoint",)),
    )
    try:
        crashing.run(pois, trajectories)
    except SimulatedCrash:
        pass
    else:
        print("FAIL: injected crash did not fire")
        return 1

    resumed = PipelineRunner(
        run_crash, csd_cfg, mining_cfg, resume=True, chunk_size=1000
    ).run(pois, trajectories)

    if pattern_key(resumed) != pattern_key(reference):
        print("FAIL: resumed patterns differ from uninterrupted run")
        return 1
    if not (run_crash / "quarantine.csv").exists():
        print("FAIL: quarantine file missing")
        return 1
    print(
        f"OK: {len(reference.patterns)} patterns bit-identical across "
        f"crash/resume; {quarantined} rows quarantined "
        f"({run_crash / 'quarantine.csv'})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
