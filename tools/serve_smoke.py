"""CI smoke test: boot the serve daemon, hammer it, verify, shut down.

End-to-end over a real socket (unlike ``benchmarks/bench_serve.py``,
which drives the service layer directly):

1. simulate a tiny city, build a CSD, and persist it with
   ``save_csd`` (the artifact ``repro serve --csd`` would load);
2. start the HTTP daemon on an ephemeral port via the same code path
   as the CLI (``RecognitionService(csd_path=...)`` + ``make_server``);
3. fire a concurrent burst of mixed requests — single recognitions,
   client batches, range/unit/tag queries, health checks — and assert
   every response is 200 with single-point answers **bit-identical**
   to sequential ``CSDRecognizer.recognize_point``;
4. scrape ``/metrics`` twice and assert the second scrape did not
   reset the first (the repeat-scrape contract), then write the final
   snapshot to ``<out>/serve_metrics.json`` for CI to upload;
5. shut the daemon down and assert no handler/batcher threads leak.

Exit code 0 means the serving contracts hold.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py --out /tmp/serve_smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.request
from pathlib import Path
from typing import List, Tuple

from repro.core.config import CSDConfig
from repro.core.constructor import build_csd
from repro.core.recognition import CSDRecognizer
from repro.data.city import CityModel
from repro.data.persistence import save_csd
from repro.data.poi import POIGenerator
from repro.data.taxi import ShanghaiTaxiSimulator
from repro.serve import RecognitionService, ServeConfig, make_server

N_CLIENTS = 8
ROUNDS_PER_CLIENT = 5


def _get(base: str, path: str) -> Tuple[int, dict]:
    with urllib.request.urlopen(base + path, timeout=30) as r:
        return r.status, json.loads(r.read())


def _post(base: str, path: str, doc: dict) -> Tuple[int, dict]:
    req = urllib.request.Request(
        base + path,
        data=json.dumps(doc).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as r:
        return r.status, json.loads(r.read())


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=Path("/tmp/serve_smoke"),
        help="work directory (CSD artifact + metrics snapshot)",
    )
    args = parser.parse_args(argv)
    args.out.mkdir(parents=True, exist_ok=True)

    # 1. Tiny workload -> persisted CSD artifact.
    city = CityModel.generate(extent_m=2_500.0, seed=7)
    pois = POIGenerator(city, seed=11).generate(600)
    taxi = ShanghaiTaxiSimulator(city, seed=23).simulate(
        n_passengers=30, days=2
    )
    stays = [
        sp for st in taxi.mining_trajectories() for sp in st.stay_points
    ]
    csd = build_csd(pois, stays, CSDConfig(), city.projection)
    csd_path = args.out / "csd.json"
    save_csd(csd_path, csd)
    print(f"built CSD: {csd.n_pois} POIs, {csd.n_units} units -> {csd_path}")

    # Sequential oracle for the bit-identity assertion.
    oracle = CSDRecognizer(csd)
    probe = stays[: N_CLIENTS * ROUNDS_PER_CLIENT]
    expected = [sorted(oracle.recognize_point(sp)) for sp in probe]

    # 2. Boot the daemon exactly as `repro serve --csd` does.
    from repro import obs

    obs.enable()
    service = RecognitionService(
        csd_path=csd_path, config=ServeConfig(max_wait_ms=1.0)
    )
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"daemon up at {base}")

    failures: List[str] = []
    try:
        # 3. Concurrent mixed-request burst.
        results: List[List[str]] = [[] for _ in probe]

        def client(worker_id: int) -> None:
            try:
                for round_no in range(ROUNDS_PER_CLIENT):
                    i = worker_id * ROUNDS_PER_CLIENT + round_no
                    sp = probe[i]
                    status, doc = _post(
                        base, "/v1/recognize",
                        {"lon": sp.lon, "lat": sp.lat},
                    )
                    if status != 200:
                        raise RuntimeError(f"recognize -> {status}")
                    results[i] = doc["semantics"]
                    status, _ = _get(base, "/healthz")
                    if status != 200:
                        raise RuntimeError(f"healthz -> {status}")
                    status, doc = _post(
                        base, "/v1/recognize/batch",
                        {"points": [[sp.lon, sp.lat]]},
                    )
                    if status != 200:
                        raise RuntimeError(f"batch -> {status}")
                    if doc["results"][0]["semantics"] != results[i]:
                        raise RuntimeError("batch disagrees with single")
                    status, _ = _post(
                        base, "/v1/range",
                        {"lon": sp.lon, "lat": sp.lat, "radius_m": 200.0},
                    )
                    if status != 200:
                        raise RuntimeError(f"range -> {status}")
                    status, _ = _get(base, "/v1/units/0")
                    if status != 200:
                        raise RuntimeError(f"units -> {status}")
            except Exception as exc:  # noqa: BLE001 -- collected below
                failures.append(f"client {worker_id}: {exc}")

        threads = [
            threading.Thread(target=client, args=(w,))
            for w in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        if failures:
            print("FAIL: " + "; ".join(failures), file=sys.stderr)
            return 1
        if results != expected:
            print("FAIL: served answers diverge from the sequential "
                  "oracle", file=sys.stderr)
            return 1
        print(f"burst ok: {len(probe)} single-point answers bit-identical "
              f"to recognize_point across {N_CLIENTS} clients")

        # 4. /metrics repeat-scrape contract + artifact.
        _, first = _get(base, "/metrics")
        _, second = _get(base, "/metrics")
        if not (
            second["counters"]["serve.requests"]
            >= first["counters"]["serve.requests"]
            > 0
        ):
            print("FAIL: /metrics scrape reset the counters",
                  file=sys.stderr)
            return 1
        metrics_path = args.out / "serve_metrics.json"
        metrics_path.write_text(json.dumps(second, indent=2) + "\n")
        print(f"metrics snapshot -> {metrics_path} "
              f"({second['counters']['serve.requests']:.0f} requests, "
              f"{second['counters'].get('serve.batches', 0):.0f} batches)")
    finally:
        # 5. Clean shutdown.
        server.shutdown()
        server.server_close()
        service.close()
        obs.disable()
        obs.get_registry().reset()
    thread.join(timeout=10)
    leftovers = [
        t.name
        for t in threading.enumerate()
        if t.name.startswith("repro-serve")
    ]
    if thread.is_alive() or leftovers:
        print(f"FAIL: threads leaked after shutdown: {leftovers}",
              file=sys.stderr)
        return 1
    print("clean shutdown, no leaked threads")
    return 0


if __name__ == "__main__":
    sys.exit(main())
